// Package experiments reproduces every table and figure of the paper's
// evaluation (§4–§5). Each runner executes the real vertex-centric tasks
// on scaled dataset replicas over the simulated clusters, extrapolates the
// measured statistics to paper scale, and emits the same rows/series the
// paper reports. DESIGN.md carries the per-experiment index; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Workload scaling: BPPR walk workloads are divided by 64 and MSSP/BKHS
// source workloads by 64 (floors keep batching meaningful), except the
// mirror variant of BPPR, whose fractional-push message volume is not
// linear in W — it runs at the paper workload and extrapolates only by
// graph scale. The extrapolation factor StatScale restores each series to
// its paper-scale message volume, so capacities (16 GB machines) and the
// 6000 s cutoff apply unchanged.
package experiments

import (
	"fmt"

	"vcmt/internal/batch"
	"vcmt/internal/graph"
	"vcmt/internal/randx"
	"vcmt/internal/sim"
	"vcmt/internal/tasks"
)

// TaskKind names a benchmark multi-processing task.
type TaskKind string

// The three benchmark tasks of §2.3.
const (
	BPPR TaskKind = "BPPR"
	MSSP TaskKind = "MSSP"
	BKHS TaskKind = "BKHS"
)

// Options tunes an experiment run.
type Options struct {
	// Fast divides replica workloads by 4 (with sane floors); statistics
	// are re-extrapolated so results stay at paper scale, only noisier.
	// Used by the Go benchmarks to keep iterations quick.
	Fast bool
	// Seed drives all randomness.
	Seed uint64
	// Workers sets the BSP engine's worker-pool size for every job (see
	// engine.Options.Workers: 0 = GOMAXPROCS, 1 = sequential). Results are
	// identical for every value; only wall-clock time changes.
	Workers int
	// OOC routes every synchronous engine job through the partitioned
	// out-of-core backend (tasks.OOCConfig). Task results are bit-identical;
	// out-of-core system profiles (GraphD) price their disk phase from the
	// measured partition-file traffic instead of the stream-fraction
	// estimate. Ignored by asynchronous (GAS) settings.
	OOC *tasks.OOCConfig
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 0xE0B7
	}
	return o.Seed
}

// Row is one bar of a figure: a batch setting and its priced result.
type Row struct {
	Batches  int
	Schedule batch.Schedule
	Result   sim.JobResult
	// AggregationSeconds is the whole-graph mode's aggregation phase
	// (Fig. 10's stacked upper bar); zero elsewhere.
	AggregationSeconds float64
}

// Seconds returns the displayed running time, clamped to the cutoff for
// overloaded runs as the paper does.
func (r Row) Seconds() float64 {
	if r.Result.Overload && r.Result.Seconds > sim.DefaultCutoffSeconds {
		return sim.DefaultCutoffSeconds
	}
	return r.Result.Seconds
}

// Series is one experiment setting swept over batch counts.
type Series struct {
	Label string // e.g. "(Workload,#Machines,System)=(10240,8,Pregel+)"
	Rows  []Row
}

// Best returns the row with the lowest time, preferring non-overloaded
// rows (the yellow arrows of Figs. 3, 5).
func (s Series) Best() Row {
	best := s.Rows[0]
	for _, r := range s.Rows[1:] {
		if r.Result.Overload && !best.Result.Overload {
			continue
		}
		if (!r.Result.Overload && best.Result.Overload) || r.Seconds() < best.Seconds() {
			best = r
		}
	}
	return best
}

// Figure is a reproduced table or figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// setting describes one series to run.
type setting struct {
	dataset  string
	cluster  sim.ClusterProfile
	machines int
	system   sim.SystemProfile
	task     TaskKind
	// paperW is the paper's workload (walks/node or sources).
	paperW int
	// replicaW overrides the derived replica workload when non-zero.
	replicaW int
	batches  []int
	seed     uint64
	// wholeGraph runs §4.9's whole-graph access mode.
	wholeGraph bool
	// statScaleOverride replaces the derived extrapolation factor; used
	// where replica locality distorts volume scaling (Twitter BKHS/MSSP:
	// the scaled-down replica's 2-hop neighborhoods cover a far larger
	// fraction of the graph than the original's, see EXPERIMENTS.md).
	statScaleOverride float64
}

// defaultBatches is the doubling sweep the paper plots.
var defaultBatches = []int{1, 2, 4, 8, 16}

// replicaWorkload derives the scaled workload for a setting.
func (s setting) replicaWorkload(o Options) int {
	if s.replicaW != 0 {
		w := s.replicaW
		if o.Fast && w > 8 {
			w /= 4
			if w < 8 {
				w = 8
			}
		}
		return w
	}
	div := 64
	if o.Fast {
		div *= 4
	}
	w := s.paperW / div
	floor := 8
	if w < floor {
		w = floor
	}
	cap := 2048
	if w > cap {
		w = cap
	}
	return w
}

// label renders the paper's "(Workload,#Machines,X)" captions.
func (s setting) label(x string) string {
	return fmt.Sprintf("(%d,%d,%s)", s.paperW, s.machines, x)
}

// paperGraphBytes estimates the paper-scale CSR footprint (16 B per vertex
// for offsets+state, 8 B per arc for id+metadata).
func paperGraphBytes(d graph.DatasetSpec) float64 {
	return float64(d.PaperNodes)*16 + float64(d.PaperEdges)*8
}

// pickSources deterministically selects count distinct source vertices.
func pickSources(n, count int, seed uint64) []graph.VertexID {
	if count > n {
		count = n
	}
	rng := randx.New(seed)
	perm := make([]int, n)
	rng.Perm(perm)
	out := make([]graph.VertexID, count)
	for i := 0; i < count; i++ {
		out[i] = graph.VertexID(perm[i])
	}
	return out
}

// jobConfig assembles the cost configuration for a setting.
func (s setting) jobConfig(d graph.DatasetSpec, replicaW int) sim.JobConfig {
	cl := s.cluster
	if s.machines != 0 && s.machines != cl.Machines {
		cl = cl.WithMachines(s.machines)
	}
	statScale := d.ScaleNodes() * float64(s.paperW) / float64(replicaW)
	if s.statScaleOverride != 0 {
		statScale = s.statScaleOverride
	}
	gb := paperGraphBytes(d) / float64(cl.Machines)
	if s.wholeGraph {
		gb = paperGraphBytes(d)
	}
	return sim.JobConfig{
		Cluster:              cl,
		System:               s.system,
		StatScale:            statScale,
		NodeScale:            d.ScaleNodes(),
		GraphBytesPerMachine: gb,
	}
}

// makeJob builds a fresh job for one run of the setting.
func (s setting) makeJob(g *graph.Graph, part *graph.Partition, replicaW int, seed uint64, o Options) (tasks.Job, error) {
	async := s.system.Async == sim.FullAsync
	switch s.task {
	case BPPR:
		return tasks.NewBPPR(g, part, tasks.BPPRConfig{
			WalksPerNode:       replicaW,
			Mirror:             s.system.Mirror,
			Async:              async,
			Seed:               seed,
			MaxRounds:          5000,
			Workers:            o.Workers,
			StopWhenOverloaded: false,
			OOC:                o.OOC,
		}), nil
	case MSSP:
		return tasks.NewMSSP(g, part, tasks.MSSPConfig{
			Sources:            pickSources(g.NumVertices(), replicaW, s.seed),
			Mirror:             s.system.Mirror,
			Async:              async,
			Seed:               seed,
			MaxRounds:          5000,
			Workers:            o.Workers,
			StopWhenOverloaded: false,
			OOC:                o.OOC,
		})
	case BKHS:
		return tasks.NewBKHS(g, part, tasks.BKHSConfig{
			Sources:            pickSources(g.NumVertices(), replicaW, s.seed),
			K:                  2,
			Mirror:             s.system.Mirror,
			Async:              async,
			Seed:               seed,
			MaxRounds:          5000,
			Workers:            o.Workers,
			StopWhenOverloaded: false,
			OOC:                o.OOC,
		}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown task %q", s.task)
	}
}

// run executes the setting across its batch sweep.
func (s setting) run(o Options, labelSuffix string) (Series, error) {
	d, err := graph.Dataset(s.dataset)
	if err != nil {
		return Series{}, err
	}
	g := d.Load()
	batches := s.batches
	if batches == nil {
		batches = defaultBatches
	}
	replicaW := s.replicaWorkload(o)
	cfg := s.jobConfig(d, replicaW)
	// The mirror BPPR variant runs at the paper workload: its fractional
	// push volume is driven by pruning depth, not walk count, so only the
	// graph-scale factor extrapolates.
	if s.task == BPPR && s.system.Mirror {
		replicaW = s.paperW
		if o.Fast && replicaW > 16 {
			replicaW /= 4
		}
		cfg.StatScale = d.ScaleNodes()
	}
	var part *graph.Partition
	if s.wholeGraph {
		part = graph.HashPartition(g.NumVertices(), 1)
	} else {
		part = graph.HashPartition(g.NumVertices(), cfg.Cluster.Machines)
	}
	series := Series{Label: s.label(labelSuffix)}
	for _, k := range batches {
		job, err := s.makeJob(g, part, replicaW, s.seed+uint64(k)*101, o)
		if err != nil {
			return Series{}, err
		}
		sched := batch.Equal(replicaW, k)
		row := Row{Batches: k, Schedule: sched}
		if s.wholeGraph {
			res, err := batch.RunWholeGraph(job, cfg, sched, batch.WholeGraphOptions{Machines: cfg.Cluster.Machines})
			if err != nil {
				return Series{}, err
			}
			row.Result = res.JobResult
			row.AggregationSeconds = res.AggregationSeconds
		} else {
			res, err := batch.Run(job, cfg, sched)
			if err != nil {
				return Series{}, err
			}
			row.Result = res
		}
		series.Rows = append(series.Rows, row)
	}
	return series, nil
}

// runAll executes a list of settings with their label suffixes.
func runAll(o Options, settings []setting, suffix func(setting) string) ([]Series, error) {
	var out []Series
	for _, s := range settings {
		ser, err := s.run(o, suffix(s))
		if err != nil {
			return nil, err
		}
		out = append(out, ser)
	}
	return out, nil
}
