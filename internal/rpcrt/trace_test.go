package rpcrt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vcmt/internal/graph"
	"vcmt/internal/obs"
)

// flightDir returns where flight-recorder crash dumps should land:
// VCMT_FLIGHT_DIR when set (CI points this at its artifact directory so
// the dump from the fault-injected test run is uploaded), else a temp dir.
func flightDir(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("VCMT_FLIGHT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestJobTraceAndFlightRecorder is the rpcrt half of the tracing
// acceptance test: a fault-injected MSSP run with a tracer and flight
// recorder attached must (a) export a validator-clean Chrome trace whose
// worker spans parent under the master's RPC spans via the wire-level
// trace context, (b) show the crash as a recovery span with restore spans
// beneath it, and (c) dump the flight recorder to disk when the crash is
// detected.
func TestJobTraceAndFlightRecorder(t *testing.T) {
	g := graph.GenerateChungLu(150, 600, 2.5, 3)
	c := startTestCluster(t, g, 3)
	c.SetCheckpoint(t.TempDir(), 2)
	c.SetFaultPlan(mustPlan(t, "crash:worker=1,step=4"))

	tracer := obs.NewTracer()
	fr := obs.NewFlightRecorder(0)
	dir := flightDir(t)
	c.SetTracer(tracer)
	c.SetFlightRecorder(fr, dir)

	sources := []graph.VertexID{0, 7, 42}
	if _, err := c.RunMSSP(sources); err != nil {
		t.Fatal(err)
	}
	if c.Recoveries() != 1 {
		t.Fatalf("recoveries=%d want 1", c.Recoveries())
	}

	// (a) strict-decoder clean, with worker spans threaded under RPC spans.
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("rpcrt trace rejected: %v", err)
	} else if n == 0 {
		t.Fatal("empty rpcrt trace")
	}
	if dir := os.Getenv("VCMT_FLIGHT_DIR"); dir != "" {
		// CI artifact: keep the trace next to the flight dump.
		if err := os.WriteFile(filepath.Join(dir, "rpcrt-trace.json"), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	spans := tracer.Spans()
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	names := make(map[string]int)
	for _, s := range spans {
		byID[s.ID] = s
		names[s.Name]++
	}
	for _, want := range []string{"job", "superstep", "Worker.Seed", "Worker.ComputeRound", "compute", "recv", "checkpoint", "restore", "recovery"} {
		if names[want] == 0 {
			t.Fatalf("no %q span in rpcrt trace; got %v", want, names)
		}
	}
	// (b) cross-process parenting: every worker-side compute span must
	// hang off a master RPC span, every restore span off the recovery
	// span, via the trace context carried in the wire frames.
	for _, s := range spans {
		switch s.Name {
		case "compute", "seed":
			p, ok := byID[s.Parent]
			if !ok || (p.Name != "Worker.ComputeRound" && p.Name != "Worker.Seed") {
				t.Fatalf("worker span %q parented under %+v, want an RPC span", s.Name, p)
			}
		case "recv":
			p, ok := byID[s.Parent]
			if !ok || (p.Name != "compute" && p.Name != "seed") {
				t.Fatalf("recv span parented under %+v, want sender's compute/seed span", p)
			}
		case "restore":
			p, ok := byID[s.Parent]
			if !ok || p.Name != "recovery" {
				t.Fatalf("restore span parented under %+v, want recovery", p)
			}
		}
	}

	// (c) the crash dump exists and is schema-valid.
	dumpPath := filepath.Join(dir, "flight-crash-1.json")
	data, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Rounds []struct {
			Round  int `json:"round"`
			Events []struct {
				Name string `json:"name"`
			} `json:"events"`
		} `json:"rounds"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("flight dump not JSON: %v", err)
	}
	if doc.Schema != "vcmt/flight-recorder/v1" {
		t.Fatalf("flight dump schema %q", doc.Schema)
	}
	found := false
	for _, r := range doc.Rounds {
		for _, ev := range r.Events {
			if ev.Name == "crash detected" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("flight dump lacks the crash-detected event: %s", data)
	}
}

// TestTraceOffIsZeroCost: with no tracer attached a job must run exactly
// as before — this is the hot path, and nil-receiver no-ops are the only
// acceptable overhead.
func TestTraceOffIsZeroCost(t *testing.T) {
	g := graph.GenerateChungLu(120, 480, 2.5, 5)
	c := startTestCluster(t, g, 2)
	if _, err := c.RunMSSP([]graph.VertexID{0, 11}); err != nil {
		t.Fatal(err)
	}
}
