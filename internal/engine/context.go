package engine

import (
	"vcmt/internal/graph"
	"vcmt/internal/randx"
	"vcmt/internal/vcapi"
)

// Context implements vcapi.Context for the BSP engine.
var _ vcapi.Context[int] = (*Context[int])(nil)

// Context is the vertex program's handle to the engine during Seed and
// Compute calls. It is bound to the machine (and, during Compute, the
// vertex) currently executing.
type Context[M any] struct {
	e       *Engine[M]
	machine int
	vertex  graph.VertexID
}

// Graph returns the graph under computation.
func (c *Context[M]) Graph() *graph.Graph { return c.e.g }

// Machine returns the executing machine's index.
func (c *Context[M]) Machine() int { return c.machine }

// Vertex returns the vertex whose Compute call is running; it is undefined
// during Seed.
func (c *Context[M]) Vertex() graph.VertexID { return c.vertex }

// Round returns the 1-based current superstep number.
func (c *Context[M]) Round() int { return c.e.rounds + 1 }

// OwnedVertices returns the vertices owned by the executing machine. The
// slice aliases engine storage and must not be modified.
func (c *Context[M]) OwnedVertices() []graph.VertexID {
	return c.e.vertsByMachine[c.machine]
}

// RNG returns the executing machine's deterministic random stream.
func (c *Context[M]) RNG() *randx.RNG { return c.e.rngs[c.machine] }

// Send transmits a point-to-point message from the executing machine to
// vertex dst, to be delivered in the next superstep (the Pregel-based
// implementation family of §3).
func (c *Context[M]) Send(dst graph.VertexID, m M) {
	e := c.e
	w := e.weight(m)
	sc := &e.sent[c.machine]
	sc.logical += w
	sc.physical++
	if e.part.Owner(dst) != c.machine {
		sc.remoteLogical += w
		sc.remotePhysical++
	}
	e.emit(envelope[M]{dst: dst, payload: m})
}

// Broadcast delivers m to every neighbor of src: the broadcast interface of
// the mirror-mechanism-based implementation family (§3). On a mirroring
// system a high-degree src transmits one wire message per mirror machine
// and the mirrors fan out locally; otherwise the broadcast degenerates to
// one point-to-point message per neighbor.
func (c *Context[M]) Broadcast(src graph.VertexID, m M) {
	e := c.e
	ns := e.g.Neighbors(src)
	if len(ns) == 0 {
		return
	}
	w := e.weight(m)
	sc := &e.sent[c.machine]
	sc.logical += w * int64(len(ns))
	if e.mirrored() && len(ns) >= e.mirrorThreshold() {
		// One wire message per mirror machine; local fan-out is free.
		e.ensureMirrorSpan()
		span := int64(e.mirrorSpan[src])
		sc.physical += span + 1 // the local copy plus one per mirror
		sc.remoteLogical += w * span
		sc.remotePhysical += span
	} else {
		sc.physical += int64(len(ns))
		for _, u := range ns {
			if e.part.Owner(u) != c.machine {
				sc.remoteLogical += w
				sc.remotePhysical++
			}
		}
	}
	for _, u := range ns {
		e.emit(envelope[M]{dst: u, payload: m})
	}
}

// ActivateNextRound marks v active in the next superstep even without
// incoming messages: the inverse of Pregel's vote-to-halt, for programs
// that iterate on local state (e.g. pointer jumping).
func (c *Context[M]) ActivateNextRound(v graph.VertexID) {
	e := c.e
	if !e.forcedFlag[v] {
		e.forcedFlag[v] = true
		e.forcedNext = append(e.forcedNext, v)
	}
}

func (e *Engine[M]) emit(env envelope[M]) {
	e.out = append(e.out, env)
	if e.opts.Spill != nil && len(e.out) >= e.opts.Spill.ThresholdMsgs {
		e.flushSpill()
	}
}
