package rpcrt

import (
	"math"
	"strings"
	"testing"
	"time"

	"vcmt/internal/fault"
	"vcmt/internal/graph"
	"vcmt/internal/obs"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runMSSPWithFaults runs one MSSP job with checkpointing and an optional
// fault plan, returning distances, rounds, messages, and worker stats.
func runMSSPWithFaults(t *testing.T, g *graph.Graph, k int, sources []graph.VertexID, planSpec string) ([][]float64, int, int64, []WorkerStats, *Cluster) {
	t.Helper()
	c := startTestCluster(t, g, k)
	c.SetCheckpoint(t.TempDir(), 2)
	if planSpec != "" {
		c.SetFaultPlan(mustPlan(t, planSpec))
	}
	dist, err := c.RunMSSP(sources)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	return dist, c.Rounds(), c.MessagesSent(), st, c
}

// TestMSSPCrashRecoveryMatchesFaultFree is the deterministic-recovery
// contract on the RPC runtime: a run that crashes a worker mid-job and
// recovers from the checkpoint must equal the fault-free run in results,
// round count, message totals and every per-worker conservation counter.
func TestMSSPCrashRecoveryMatchesFaultFree(t *testing.T) {
	g := graph.GenerateChungLu(150, 600, 2.5, 3)
	sources := []graph.VertexID{0, 7, 42}
	for _, k := range []int{1, 4, 8} {
		baseDist, baseRounds, baseMsgs, baseStats, _ := runMSSPWithFaults(t, g, k, sources, "")
		crash := "crash:worker=0,step=4"
		if k > 1 {
			crash = "crash:worker=1,step=4"
		}
		dist, rounds, msgs, stats, c := runMSSPWithFaults(t, g, k, sources, crash)
		if c.Recoveries() != 1 {
			t.Fatalf("k=%d: recoveries=%d want 1", k, c.Recoveries())
		}
		if c.RoundsLost() != 1 {
			t.Fatalf("k=%d: rounds lost=%d want 1 (crash at 4, checkpoint at 2, round 3 replayed)", k, c.RoundsLost())
		}
		if rounds != baseRounds || msgs != baseMsgs {
			t.Fatalf("k=%d: rounds/msgs %d/%d, fault-free %d/%d", k, rounds, msgs, baseRounds, baseMsgs)
		}
		for i := range sources {
			for v := 0; v < g.NumVertices(); v++ {
				a, b := baseDist[i][v], dist[i][v]
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					t.Fatalf("k=%d src %d v %d: fault-free %v recovered %v", k, sources[i], v, a, b)
				}
			}
		}
		for i := range stats {
			a, b := baseStats[i], stats[i]
			if a.Sent != b.Sent || a.Recv != b.Recv || a.Retries != b.Retries {
				t.Fatalf("k=%d worker %d counters diverge: fault-free %+v recovered %+v", k, i, a, b)
			}
			// Exact wire-byte counters are checkpointed and re-accumulated
			// during silent replay, so they match a fault-free run too.
			if a.SentBytes != b.SentBytes || a.RecvBytes != b.RecvBytes ||
				a.SentFrames != b.SentFrames || a.RecvFrames != b.RecvFrames {
				t.Fatalf("k=%d worker %d byte counters diverge: fault-free %+v recovered %+v", k, i, a, b)
			}
			for p := range a.SentByPeer {
				if a.SentByPeer[p] != b.SentByPeer[p] || a.RecvByPeer[p] != b.RecvByPeer[p] {
					t.Fatalf("k=%d worker %d per-peer counters diverge at %d", k, i, p)
				}
			}
		}
	}
}

// TestBPPRCrashRecoveryBitIdentical checks the hard case: a randomized
// program. The checkpoint carries the worker RNG stream positions, so the
// recovered run must reproduce the fault-free walk endpoints exactly.
func TestBPPRCrashRecoveryBitIdentical(t *testing.T) {
	g := graph.GenerateChungLu(60, 240, 2.4, 9)
	const walks, alpha, seed = 200, 0.15, 3

	run := func(planSpec string) (map[[2]graph.VertexID]float64, *Cluster) {
		c := startTestCluster(t, g, 3)
		c.SetCheckpoint(t.TempDir(), 1)
		if planSpec != "" {
			c.SetFaultPlan(mustPlan(t, planSpec))
		}
		ppr, err := c.RunBPPR(walks, alpha, seed)
		if err != nil {
			t.Fatal(err)
		}
		return ppr, c
	}

	base, _ := run("")
	got, c := run("crash:worker=2,step=3")
	if c.Recoveries() != 1 {
		t.Fatalf("recoveries=%d want 1", c.Recoveries())
	}
	if len(base) != len(got) {
		t.Fatalf("endpoint sets differ: %d vs %d entries", len(base), len(got))
	}
	for key, p := range base {
		if got[key] != p {
			t.Fatalf("PPR(%d,%d): fault-free %v recovered %v", key[0], key[1], p, got[key])
		}
	}
}

// TestRecoveryTelemetry checks the registry view of a recovered job: the
// per-round histograms contain every round exactly once (replays are not
// re-observed), and the recovery counters record the event.
func TestRecoveryTelemetry(t *testing.T) {
	g := graph.GenerateChungLu(120, 480, 2.4, 11)
	c := startTestCluster(t, g, 3)
	reg := obs.NewRegistry()
	c.SetRegistry(reg)
	c.SetCheckpoint(t.TempDir(), 2)
	c.SetFaultPlan(mustPlan(t, "crash:worker=0,step=4"))
	if _, err := c.RunMSSP([]graph.VertexID{1, 30}); err != nil {
		t.Fatal(err)
	}
	msgs := reg.Histogram("rpcrt_round_msgs").Stats()
	if int(msgs.Count) != c.Rounds() {
		t.Fatalf("round histogram count %d != rounds %d (replays must not re-observe)", msgs.Count, c.Rounds())
	}
	if int64(msgs.Sum) != c.MessagesSent() {
		t.Fatalf("round histogram sum %v != messages %d", msgs.Sum, c.MessagesSent())
	}
	if got := reg.Counter("rpcrt_recoveries_total").Value(); got != 1 {
		t.Fatalf("recoveries counter=%d want 1", got)
	}
	if got := reg.Counter("rpcrt_ckpt_writes_total").Value(); got <= 0 {
		t.Fatal("no checkpoint writes recorded")
	}
	if got := reg.Counter("rpcrt_worker_restarts_total").Value(); got != 1 {
		t.Fatalf("restarts counter=%d want 1", got)
	}
}

// TestCrashWithoutCheckpointFailsJob: with no checkpoint configured, an
// injected crash is fatal to the job (and reported, not hung).
func TestCrashWithoutCheckpointFailsJob(t *testing.T) {
	g := graph.GenerateChungLu(80, 320, 2.5, 5)
	c := startTestCluster(t, g, 2)
	c.SetFaultPlan(mustPlan(t, "crash:worker=1,step=3"))
	_, err := c.RunMSSP([]graph.VertexID{0})
	// The broadcast may surface either the crash itself or a surviving
	// worker's failed delivery to the dead peer, whichever worker index is
	// lower.
	if err == nil || !(strings.Contains(err.Error(), "injected crash") || strings.Contains(err.Error(), workerDownMsg)) {
		t.Fatalf("want crash-surface error, got %v", err)
	}
}

// TestDelayFaultTripsRPCTimeout: a planned delay longer than the RPC
// deadline surfaces as a timeout error instead of blocking forever.
func TestDelayFaultTripsRPCTimeout(t *testing.T) {
	g := graph.GenerateChungLu(80, 320, 2.5, 5)
	c := startTestCluster(t, g, 2)
	c.SetRPCTimeout(100 * time.Millisecond)
	c.SetFaultPlan(mustPlan(t, "delay:worker=0,step=2,ms=2000"))
	_, err := c.RunMSSP([]graph.VertexID{0})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
}

// TestDropFaultRetriesAndConserves: dropped deliveries are retried with
// backoff; fewer drops than attempts means the job completes with correct
// results and intact conservation counters.
func TestDropFaultRetriesAndConserves(t *testing.T) {
	g := graph.GenerateChungLu(100, 400, 2.5, 7)
	c := startTestCluster(t, g, 3)
	c.SetFaultPlan(mustPlan(t, "drop:from=0,to=1,step=2,count=2"))
	base := startTestCluster(t, g, 3)
	want, err := base.RunMSSP([]graph.VertexID{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunMSSP([]graph.VertexID{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for v := range want[i] {
			a, b := want[i][v], got[i][v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("src %d v %d: %v vs %v", i, v, a, b)
			}
		}
	}
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	var sent, recv int64
	retried := false
	for _, st := range stats {
		sent += st.Sent
		recv += st.Recv
		if st.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("drop fault never triggered a retry")
	}
	if sent != recv {
		t.Fatalf("conservation broken: sent %d recv %d", sent, recv)
	}
}

// TestSlowFaultKeepsResults: a slowdown stretches wall time but cannot
// change any result or counter.
func TestSlowFaultKeepsResults(t *testing.T) {
	g := graph.GenerateChungLu(80, 320, 2.5, 13)
	c := startTestCluster(t, g, 2)
	c.SetFaultPlan(mustPlan(t, "slow:worker=0,step=2,factor=3"))
	base := startTestCluster(t, g, 2)
	want, err := base.RunMSSP([]graph.VertexID{4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunMSSP([]graph.VertexID{4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want[0] {
		a, b := want[0][v], got[0][v]
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Fatalf("v %d: %v vs %v", v, a, b)
		}
	}
}

// TestCloseIsIdempotent: double Close is safe and reports nil; a cluster
// that lost a worker mid-job still closes cleanly (already-dead sockets are
// not errors).
func TestCloseIsIdempotent(t *testing.T) {
	g := graph.GenerateRing(12)
	c, err := StartCluster(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestCloseAfterCrashedWorker: Close after a crash-recovery cycle must not
// report the dead worker's closed listener as an error.
func TestCloseAfterCrashedWorker(t *testing.T) {
	g := graph.GenerateChungLu(80, 320, 2.5, 5)
	c, err := StartCluster(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCheckpoint(t.TempDir(), 1)
	c.SetFaultPlan(mustPlan(t, "crash:worker=1,step=3"))
	if _, err := c.RunMSSP([]graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestTwoCrashesSameJob: two distinct crashes in one job, both recovered.
func TestTwoCrashesSameJob(t *testing.T) {
	g := graph.GenerateChungLu(150, 600, 2.5, 3)
	sources := []graph.VertexID{0, 7, 42}
	baseDist, baseRounds, baseMsgs, _, _ := runMSSPWithFaults(t, g, 4, sources, "")
	dist, rounds, msgs, _, c := runMSSPWithFaults(t, g, 4, sources, "crash:worker=1,step=3;crash:worker=2,step=5")
	if c.Recoveries() != 2 {
		t.Fatalf("recoveries=%d want 2", c.Recoveries())
	}
	if rounds != baseRounds || msgs != baseMsgs {
		t.Fatalf("rounds/msgs %d/%d, fault-free %d/%d", rounds, msgs, baseRounds, baseMsgs)
	}
	for i := range sources {
		for v := 0; v < g.NumVertices(); v++ {
			a, b := baseDist[i][v], dist[i][v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("src %d v %d: fault-free %v recovered %v", sources[i], v, a, b)
			}
		}
	}
}
