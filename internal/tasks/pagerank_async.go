package tasks

import (
	"fmt"

	"vcmt/internal/gas"
	"vcmt/internal/graph"
	"vcmt/internal/sim"
	"vcmt/internal/vcapi"
)

// AsyncPageRankConfig configures the asynchronous (GraphLab(async))
// PageRank of Table 4: vertices execute as soon as input is ready and
// propagate only rank deltas above a tolerance, which is why asynchronous
// execution wins on this light, convergence-driven task (§4.8).
type AsyncPageRankConfig struct {
	// Damping is the damping factor (default 0.85).
	Damping float64
	// Tolerance is the minimum unpropagated rank delta that re-activates
	// neighbors, relative to the uniform rank 1/n (default 0.03); smaller
	// is more accurate but costlier. The relative form keeps convergence
	// behaviour graph-size independent.
	Tolerance          float64
	Seed               uint64
	StopWhenOverloaded bool
}

// AsyncPageRank runs delta-PageRank on the asynchronous executor and
// returns the rank vector.
func AsyncPageRank(g *graph.Graph, part *graph.Partition, run *sim.Run, cfg AsyncPageRankConfig) ([]float64, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.03
	}
	n := g.NumVertices()
	cfg.Tolerance /= float64(n)
	prog := &asyncPRProg{
		cfg:  cfg,
		rank: make([]float64, n),
		sent: make([]float64, n),
	}
	a := gas.NewAsync[RankMsg](g, part, prog, run, gas.Options[RankMsg]{
		Seed:               cfg.Seed,
		StopWhenOverloaded: cfg.StopWhenOverloaded,
	})
	if err := a.Run(); err != nil {
		return nil, fmt.Errorf("tasks: async PageRank: %w", err)
	}
	return prog.rank, nil
}

// asyncPRProg solves r = (1-d)/n + d·Σ_{u→v} r(u)/deg(u) by asynchronous
// delta propagation: each vertex tracks how much of its rank it has
// already pushed to neighbors and pushes the difference once it exceeds
// the tolerance. The iteration is a contraction (d < 1), so it converges
// regardless of execution order.
type asyncPRProg struct {
	cfg  AsyncPageRankConfig
	rank []float64
	sent []float64 // rank already propagated to neighbors
}

func (p *asyncPRProg) Seed(ctx vcapi.Context[RankMsg]) {
	base := (1 - p.cfg.Damping) / float64(len(p.rank))
	for _, v := range ctx.OwnedVertices() {
		p.rank[v] = base
		p.scatter(ctx, v)
	}
}

func (p *asyncPRProg) Compute(ctx vcapi.Context[RankMsg], v graph.VertexID, msgs []RankMsg) {
	var delta float64
	for _, m := range msgs {
		delta += float64(m.Mass)
	}
	p.rank[v] += p.cfg.Damping * delta
	p.scatter(ctx, v)
}

func (p *asyncPRProg) scatter(ctx vcapi.Context[RankMsg], v graph.VertexID) {
	unsent := p.rank[v] - p.sent[v]
	if unsent <= p.cfg.Tolerance {
		return
	}
	ns := ctx.Graph().Neighbors(v)
	if len(ns) == 0 {
		return
	}
	p.sent[v] = p.rank[v]
	share := float32(unsent / float64(len(ns)))
	for _, u := range ns {
		ctx.Send(u, RankMsg{Mass: share})
	}
}
