// Package vcapi defines the vertex-centric programming contract shared by
// every executor in this repository: the synchronous BSP engine
// (internal/engine, the Pregel/Giraph/Pregel+/GraphD family) and the
// GAS-style executors (internal/gas, the GraphLab family, including the
// asynchronous engine). A vertex program written once against these
// interfaces runs unchanged on any executor, which is exactly how the
// paper ports its benchmark tasks across the seven systems (§3).
package vcapi

import (
	"vcmt/internal/graph"
	"vcmt/internal/randx"
)

// Context is the vertex program's handle to the running executor.
type Context[M any] interface {
	// Graph returns the graph under computation.
	Graph() *graph.Graph
	// Machine returns the index of the machine executing the current call.
	Machine() int
	// Vertex returns the vertex whose Compute call is running (undefined
	// during Seed).
	Vertex() graph.VertexID
	// Round returns the 1-based superstep number (for asynchronous
	// executors, the accounting epoch).
	Round() int
	// OwnedVertices lists the vertices owned by the executing machine.
	OwnedVertices() []graph.VertexID
	// RNG returns the executing machine's deterministic random stream.
	RNG() *randx.RNG
	// Send transmits a point-to-point message to dst (the Pregel-based
	// implementation family of §3).
	Send(dst graph.VertexID, m M)
	// Broadcast delivers m to every neighbor of src (the broadcast
	// interface of the mirror-mechanism-based family of §3).
	Broadcast(src graph.VertexID, m M)
}

// Program is a vertex-centric program.
type Program[M any] interface {
	// Seed runs once per machine as the first superstep and sends the
	// initial messages.
	Seed(ctx Context[M])
	// Compute runs for a vertex with pending messages. msgs aliases
	// executor-internal storage and is only valid during the call.
	Compute(ctx Context[M], v graph.VertexID, msgs []M)
}

// StateReporter is an optional Program extension: executors poll it after
// each superstep/epoch for the live task-state entries per machine, which
// the cost model charges against memory.
type StateReporter interface {
	StateEntries(machine int) int64
}

// WeightFunc reports the logical multiplicity of a message (e.g. the
// number of walks a counted BPPR message carries). nil means 1.
type WeightFunc[M any] func(M) int64

// StateSnapshotter is an optional Program extension required for
// checkpointing: SaveState serializes all program-owned mutable state at a
// superstep barrier and LoadState restores it, such that a restored
// program replays subsequent supersteps identically. Encodings must be
// deterministic (iterate maps in sorted key order) so checkpoint bytes are
// reproducible.
type StateSnapshotter interface {
	SaveState() ([]byte, error)
	LoadState(data []byte) error
}
