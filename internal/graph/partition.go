package graph

// Partition maps vertices to machines. The paper's systems use random hash
// partitioning by default (§4, "Pregel+ uses random hash on vertices to
// partition the graphs"); we reproduce that, plus a contiguous-range
// partitioner for tests.
type Partition struct {
	machines int
	owner    func(VertexID) int
	counts   []int
}

// NumMachines returns the number of machines in the partition.
func (p *Partition) NumMachines() int { return p.machines }

// Owner returns the machine owning vertex v.
func (p *Partition) Owner(v VertexID) int { return p.owner(v) }

// Count returns the number of vertices assigned to machine m.
func (p *Partition) Count(m int) int { return p.counts[m] }

// HashPartition spreads n vertices over k machines with a multiplicative
// hash (deterministic, well-mixed even for consecutive IDs).
func HashPartition(n, k int) *Partition {
	if k <= 0 {
		panic("graph: partition needs at least one machine")
	}
	owner := func(v VertexID) int {
		h := uint64(v) * 0x9e3779b97f4a7c15
		h ^= h >> 29
		return int(h % uint64(k))
	}
	p := &Partition{machines: k, owner: owner, counts: make([]int, k)}
	for v := 0; v < n; v++ {
		p.counts[owner(VertexID(v))]++
	}
	return p
}

// RangePartition assigns contiguous vertex ranges to machines; mainly for
// tests where the owner of a vertex must be predictable.
func RangePartition(n, k int) *Partition {
	if k <= 0 {
		panic("graph: partition needs at least one machine")
	}
	per := (n + k - 1) / k
	if per == 0 {
		per = 1
	}
	owner := func(v VertexID) int {
		m := int(v) / per
		if m >= k {
			m = k - 1
		}
		return m
	}
	p := &Partition{machines: k, owner: owner, counts: make([]int, k)}
	for v := 0; v < n; v++ {
		p.counts[owner(VertexID(v))]++
	}
	return p
}

// ReplicatedPartition models the paper's "whole graph access mode"
// (§4.9, Fig. 10): every machine holds the entire graph and the workload,
// not the vertex set, is split. Owner always returns 0; engines treat a
// replicated partition specially.
func ReplicatedPartition(n, k int) *Partition {
	p := &Partition{machines: k, owner: func(VertexID) int { return 0 }, counts: make([]int, k)}
	p.counts[0] = n
	return p
}
