package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"vcmt/internal/graph"
)

// benchBatch builds a delivery batch shaped like real rpcrt traffic: IDs
// drawn from a million-vertex range (mostly 3-byte varints).
func benchBatch(n int) []Envelope {
	rng := rand.New(rand.NewSource(42))
	batch := make([]Envelope, n)
	for i := range batch {
		batch[i] = Envelope{
			Dst: graph.VertexID(rng.Intn(1 << 20)),
			Src: graph.VertexID(rng.Intn(1 << 20)),
			Val: rng.Float32() * 100,
		}
	}
	return batch
}

const benchBatchSize = 4096

// BenchmarkDeliverWireEncode measures encoding one coalesced Deliver frame
// into a pooled buffer — the sender half of flushOutboxes.
func BenchmarkDeliverWireEncode(b *testing.B) {
	batch := benchBatch(benchBatchSize)
	b.SetBytes(int64(DeliverSize(1, 3, 0, batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		frame := EncodeDeliver((*buf)[:0], 1, 3, 0, batch)
		*buf = frame
		PutBuf(buf)
	}
}

// BenchmarkDeliverWireDecode measures decoding one Deliver frame into a
// pooled envelope slice — the receiver half of Worker.Deliver.
func BenchmarkDeliverWireDecode(b *testing.B) {
	batch := benchBatch(benchBatchSize)
	frame := EncodeDeliver(nil, 1, 3, 0, batch)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl := GetEnvelopes()
		_, out, err := DecodeDeliver(frame, (*sl)[:0])
		if err != nil {
			b.Fatal(err)
		}
		*sl = out[:0]
		PutEnvelopes(sl)
	}
}

// BenchmarkDeliverWire is the full payload round-trip of one Deliver RPC
// on the binary codec: encode the batch, decode it on the other side.
func BenchmarkDeliverWire(b *testing.B) {
	batch := benchBatch(benchBatchSize)
	b.SetBytes(int64(DeliverSize(1, 3, 0, batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		frame := EncodeDeliver((*buf)[:0], 1, 3, 0, batch)
		sl := GetEnvelopes()
		_, out, err := DecodeDeliver(frame, (*sl)[:0])
		if err != nil {
			b.Fatal(err)
		}
		*sl = out[:0]
		PutEnvelopes(sl)
		*buf = frame
		PutBuf(buf)
	}
}

// gobBatch mirrors the DeliverArgs shape the runtime used before the
// binary codec: a struct with the sender id and a message slice, pushed
// through gob.
type gobBatch struct {
	From  int
	Batch []Envelope
}

// BenchmarkDeliverGob is the gob baseline for the same round-trip, using a
// persistent encoder/decoder pair over one buffer — gob's steady state on
// a long-lived net/rpc connection (type descriptors already exchanged).
func BenchmarkDeliverGob(b *testing.B) {
	batch := benchBatch(benchBatchSize)
	var network bytes.Buffer
	enc := gob.NewEncoder(&network)
	dec := gob.NewDecoder(&network)
	// Prime the connection so type descriptors are not re-sent per op.
	if err := enc.Encode(gobBatch{From: 1, Batch: batch[:1]}); err != nil {
		b.Fatal(err)
	}
	var sink gobBatch
	if err := dec.Decode(&sink); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(DeliverSize(1, 3, 0, batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(gobBatch{From: 1, Batch: batch}); err != nil {
			b.Fatal(err)
		}
		var out gobBatch
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}
