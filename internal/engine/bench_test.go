package engine

import (
	"testing"

	"vcmt/internal/graph"
	"vcmt/internal/vcapi"
)

// flood sends one message per edge per round for a fixed number of rounds:
// a pure message-throughput workload for the engine hot path.
type floodProg struct{ rounds int }

func (p *floodProg) Seed(ctx vcapi.Context[hopMsg]) {
	for _, v := range ctx.OwnedVertices() {
		for _, u := range ctx.Graph().Neighbors(v) {
			ctx.Send(u, hopMsg{Hop: 1})
		}
	}
}

func (p *floodProg) Compute(ctx vcapi.Context[hopMsg], v graph.VertexID, msgs []hopMsg) {
	if ctx.Round() > p.rounds {
		return
	}
	for _, u := range ctx.Graph().Neighbors(v) {
		ctx.Send(u, hopMsg{Hop: 1})
	}
}

// BenchmarkEngineMessageThroughput measures the BSP engine's end-to-end
// per-message cost (send, route, bucket, deliver, compute).
func BenchmarkEngineMessageThroughput(b *testing.B) {
	g := graph.GenerateChungLu(10000, 40000, 2.5, 3)
	part := graph.HashPartition(g.NumVertices(), 8)
	const rounds = 10
	msgsPerRun := g.NumEdges() * (rounds + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New[hopMsg](g, part, &floodProg{rounds: rounds}, nil, Options[hopMsg]{Seed: 1})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgsPerRun)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
}

// BenchmarkEngineWithCombiner measures the combiner's delivery-time cost.
func BenchmarkEngineWithCombiner(b *testing.B) {
	g := graph.GenerateChungLu(10000, 40000, 2.5, 3)
	part := graph.HashPartition(g.NumVertices(), 8)
	for i := 0; i < b.N; i++ {
		e := New[hopMsg](g, part, &floodProg{rounds: 10}, nil, Options[hopMsg]{
			Seed: 1,
			Combiner: func(a, c hopMsg) hopMsg {
				if a.Hop < c.Hop {
					return a
				}
				return c
			},
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWorkers measures the worker-pool scaling of the engine on
// the largest bench graph (50k vertices, 200k edges, 8 logical machines):
// the same flood workload at pool sizes 1, 2, 4 and 8. Results are
// bit-identical across sub-benchmarks (the determinism contract); only the
// wall clock may change. On a single-CPU host all sizes perform alike —
// the speedup target is meaningful only with 4+ cores.
func BenchmarkEngineWorkers(b *testing.B) {
	g := graph.GenerateChungLu(50000, 200000, 2.5, 3)
	part := graph.HashPartition(g.NumVertices(), 8)
	const rounds = 8
	msgsPerRun := g.NumEdges() * (rounds + 1)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[hopMsg](g, part, &floodProg{rounds: rounds}, nil, Options[hopMsg]{
					Seed: 1, Workers: w,
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(msgsPerRun)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
		})
	}
}

// BenchmarkEngineDeliverySteadyState measures one fill-and-deliver cycle on
// a long-lived engine: every send lands in pooled outbox rows and the
// counting sort places payloads into the persistent inbox. After the warm-up
// cycle grows the buffers to capacity, the path must run allocation-free —
// the CI gate pins this benchmark at exactly 0 allocs/op.
func BenchmarkEngineDeliverySteadyState(b *testing.B) {
	g := graph.GenerateChungLu(10000, 40000, 2.5, 3)
	part := graph.HashPartition(g.NumVertices(), 8)
	e := New[hopMsg](g, part, &floodProg{rounds: 1}, nil, Options[hopMsg]{Seed: 1})
	fill := func() {
		for m := 0; m < e.k; m++ {
			ctx := e.ctxs[m]
			for _, v := range e.vertsByMachine[m] {
				ctx.vertex = v
				for _, u := range g.Neighbors(v) {
					ctx.Send(u, hopMsg{Hop: 1})
				}
			}
		}
	}
	fill()
	e.deliver()
	msgsPerOp := float64(2 * g.NumEdges()) // one send per directed edge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		e.deliver()
	}
	b.ReportMetric(msgsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
}

// BenchmarkEngineSkewedDegree runs the flood workload on a heavy-tailed
// degree distribution (Chung-Lu exponent 2.0), where a few hub vertices
// concentrate a large share of the messages on one machine: the stress test
// for degree-aware (LPT) scheduling and per-row buffer reuse. The w1
// sub-benchmark is part of the CI gate; w4 exercises the pool but its wall
// clock is hardware-dependent, so it stays informational.
func BenchmarkEngineSkewedDegree(b *testing.B) {
	g := graph.GenerateChungLu(20000, 120000, 2.0, 7)
	part := graph.HashPartition(g.NumVertices(), 8)
	const rounds = 6
	msgsPerRun := g.NumEdges() * (rounds + 1)
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "w1", 4: "w4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[hopMsg](g, part, &floodProg{rounds: rounds}, nil, Options[hopMsg]{
					Seed: 1, Workers: w,
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(msgsPerRun)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmsgs/s")
		})
	}
}

// BenchmarkEngineSpill measures the real out-of-core path (encode, write,
// read back, decode through a temp file).
func BenchmarkEngineSpill(b *testing.B) {
	g := graph.GenerateChungLu(5000, 20000, 2.5, 3)
	part := graph.HashPartition(g.NumVertices(), 4)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		e := New[hopMsg](g, part, &floodProg{rounds: 5}, nil, Options[hopMsg]{
			Seed:  1,
			Spill: &SpillOptions[hopMsg]{Codec: hopCodec{}, Dir: dir, ThresholdMsgs: 4096},
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
