// Package ooc implements true out-of-core execution for the vertex-centric
// engine, following GraphD ("Efficient Processing of Very Large Graphs in a
// Small Cluster") and PartitionedVC: edges and oversized inboxes live in
// sequentially-read partition files on disk, and supersteps stream them
// through a bounded memory window while only O(V) vertex state stays
// resident. The package is payload-agnostic — messages are opaque []byte
// payloads; the engine's typed Codec encodes and decodes around it.
//
// This file defines the on-disk partition format, a versioned little-endian
// framed encoding in the internal/wire idiom:
//
//	header   'V' 'P' version kind flags                  (5 bytes)
//	records  uvarint(len) body ...                       (len > 0)
//	end      uvarint(0)                                  (1 byte)
//	count    uvarint(record count)                       (cross-check)
//	trailer  CRC-64/ECMA of all preceding bytes, LE      (8 bytes)
//
// A message record body is uvarint(dst) followed by the raw payload. An edge
// record body is uvarint(v) uvarint(deg) then deg canonical uvarint neighbor
// IDs, followed by deg little-endian float32 weights when the weighted flag
// is set. All varints are canonical (minimal length); decoders reject
// non-minimal encodings, truncation, trailing bytes, count mismatches and
// checksum failures with errors wrapping ErrCorrupt, and never panic on
// hostile input. Allocation during decode is bounded by MaxRecordBytes.
package ooc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"

	"vcmt/internal/graph"
)

const (
	partMagic0 = 'V'
	partMagic1 = 'P'

	// Version is the current partition file format version.
	Version = 1

	// KindEdges marks an edge partition file; KindMessages a message
	// partition (inbox or spill) file.
	KindEdges    = 1
	KindMessages = 2

	// flagWeighted marks edge records as carrying per-edge float32 weights.
	flagWeighted = 1

	// MaxRecordBytes bounds a single record, and therefore the allocation a
	// hostile length prefix can force on a decoder.
	MaxRecordBytes = 1 << 27

	headerLen  = 5
	trailerLen = 8
)

// ErrCorrupt is wrapped by every decode error caused by malformed input.
var ErrCorrupt = errors.New("corrupt partition file")

// ErrVersion is returned for partition files with an unsupported version
// byte. It wraps ErrCorrupt so a single errors.Is covers both.
var ErrVersion = fmt.Errorf("unsupported partition version: %w", ErrCorrupt)

var crcTable = crc64.MakeTable(crc64.ECMA)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("ooc: "+format+": %w", append(args, ErrCorrupt)...)
}

// uvarintLen returns the canonical encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Writer appends records to a partition file. It maintains a running
// CRC-64/ECMA over every byte written so Finish can emit the trailer without
// re-reading the file, and so ResumeWriter can recreate mid-stream writer
// state from a raw byte snapshot (the checkpoint restore path).
type Writer struct {
	f        *os.File
	w        *bufio.Writer
	crc      uint64
	kind     byte
	weighted bool
	records  int64
	bytes    int64 // encoded bytes written so far (trailer excluded until Finish)
	scratch  []byte
	err      error
	path     string
}

// NewWriter starts a partition stream on an arbitrary io.Writer (used by
// tests and the canonical re-encode check); Create is the file-backed form.
func NewWriter(w io.Writer, kind byte, weighted bool) *Writer {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<20), kind: kind, weighted: weighted}
	flags := byte(0)
	if weighted {
		flags |= flagWeighted
	}
	pw.write([]byte{partMagic0, partMagic1, Version, kind, flags})
	return pw
}

// Create opens path for writing and emits the partition header.
func Create(path string, kind byte, weighted bool) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := NewWriter(f, kind, weighted)
	w.f = f
	w.path = path
	return w, w.err
}

// ResumeWriter recreates a mid-stream Writer from a raw snapshot of a
// partition file taken before Finish (the checkpoint restore path): content
// is written to path verbatim and replayed through the running CRC, so
// subsequent appends and the eventual trailer are identical to a writer
// that never stopped. records is the record count the snapshot holds.
func ResumeWriter(path string, content []byte, records int64) (*Writer, error) {
	if len(content) < headerLen {
		return nil, corrupt("resume snapshot truncated at %d bytes", len(content))
	}
	if content[0] != partMagic0 || content[1] != partMagic1 {
		return nil, corrupt("bad magic %q", content[:2])
	}
	if content[2] != Version {
		return nil, fmt.Errorf("ooc: version %d: %w", content[2], ErrVersion)
	}
	kind := content[3]
	if kind != KindEdges && kind != KindMessages {
		return nil, corrupt("unknown partition kind %d", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f: f, w: bufio.NewWriterSize(f, 1<<20), path: path,
		kind: kind, weighted: content[4]&flagWeighted != 0, records: records,
	}
	w.write(content)
	if w.err != nil {
		f.Close()
		os.Remove(path)
		return nil, w.err
	}
	return w, nil
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc64.Update(w.crc, crcTable, b)
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.bytes += int64(len(b))
}

func (w *Writer) writeUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.write(buf[:binary.PutUvarint(buf[:], v)])
}

// AppendMessage appends one message record. The payload is copied.
func (w *Writer) AppendMessage(dst graph.VertexID, payload []byte) error {
	if w.kind != KindMessages {
		return fmt.Errorf("ooc: AppendMessage on kind-%d partition", w.kind)
	}
	rlen := uvarintLen(uint64(dst)) + len(payload)
	if rlen > MaxRecordBytes {
		return fmt.Errorf("ooc: message record of %d bytes exceeds MaxRecordBytes", rlen)
	}
	w.writeUvarint(uint64(rlen))
	w.writeUvarint(uint64(dst))
	w.write(payload)
	w.records++
	return w.err
}

// AppendEdges appends one edge record: vertex v with its out-neighbors and,
// for weighted partitions, the parallel weights.
func (w *Writer) AppendEdges(v graph.VertexID, neighbors []graph.VertexID, weights []float32) error {
	if w.kind != KindEdges {
		return fmt.Errorf("ooc: AppendEdges on kind-%d partition", w.kind)
	}
	if w.weighted != (weights != nil) {
		return fmt.Errorf("ooc: weighted flag %v but weights %v", w.weighted, weights != nil)
	}
	if weights != nil && len(weights) != len(neighbors) {
		return fmt.Errorf("ooc: %d weights for %d neighbors", len(weights), len(neighbors))
	}
	w.scratch = w.scratch[:0]
	var buf [binary.MaxVarintLen64]byte
	w.scratch = append(w.scratch, buf[:binary.PutUvarint(buf[:], uint64(v))]...)
	w.scratch = append(w.scratch, buf[:binary.PutUvarint(buf[:], uint64(len(neighbors)))]...)
	for _, u := range neighbors {
		w.scratch = append(w.scratch, buf[:binary.PutUvarint(buf[:], uint64(u))]...)
	}
	for _, wt := range weights {
		w.scratch = binary.LittleEndian.AppendUint32(w.scratch, math.Float32bits(wt))
	}
	if len(w.scratch) > MaxRecordBytes {
		return fmt.Errorf("ooc: edge record of %d bytes exceeds MaxRecordBytes", len(w.scratch))
	}
	w.writeUvarint(uint64(len(w.scratch)))
	w.write(w.scratch)
	w.records++
	return w.err
}

// Records returns the number of records appended so far.
func (w *Writer) Records() int64 { return w.records }

// Bytes returns the encoded bytes written so far (header + records; the
// end marker, count and trailer are added by Finish).
func (w *Writer) Bytes() int64 { return w.bytes }

// Path returns the file path for file-backed writers, else "".
func (w *Writer) Path() string { return w.path }

// Finish writes the end marker, record count and CRC trailer, flushes, and
// closes the underlying file if any. It returns the total encoded size.
func (w *Writer) Finish() (int64, error) {
	w.writeUvarint(0)
	w.writeUvarint(uint64(w.records))
	crc := w.crc // trailer is not part of its own checksum
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], crc)
	if w.err == nil {
		if _, err := w.w.Write(tr[:]); err != nil {
			w.err = err
		} else {
			w.bytes += trailerLen
		}
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.f != nil {
		if cerr := w.f.Close(); w.err == nil {
			w.err = cerr
		}
		w.f = nil
	}
	return w.bytes, w.err
}

// Abort closes and removes the file without writing a trailer.
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
		os.Remove(w.path)
	}
}

// Snapshot flushes buffered writes and returns the raw bytes written so far
// (header + records, no trailer), suitable for ResumeWriter. Only valid on
// file-backed writers.
func (w *Writer) Snapshot() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.f == nil {
		return nil, fmt.Errorf("ooc: Snapshot on non-file writer")
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return nil, err
	}
	return os.ReadFile(w.path)
}

// Reader streams records from a partition file, verifying the record count
// and CRC trailer when the end marker is reached. Decoded slices alias
// internal buffers that are reused by the next call.
type Reader struct {
	f        *os.File
	r        *bufio.Reader
	crc      uint64
	kind     byte
	weighted bool
	records  int64
	buf      []byte
	nbrs     []graph.VertexID
	wts      []float32
	done     bool
}

// Open opens a partition file and parses its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.f = f
	return r, nil
}

// NewReader starts decoding a partition stream from an arbitrary io.Reader.
func NewReader(rd io.Reader) (*Reader, error) {
	r := &Reader{r: bufio.NewReaderSize(rd, 1<<20)}
	var hdr [headerLen]byte
	if err := r.readFull(hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != partMagic0 || hdr[1] != partMagic1 {
		return nil, corrupt("bad magic %q", hdr[:2])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("ooc: version %d: %w", hdr[2], ErrVersion)
	}
	r.kind = hdr[3]
	if r.kind != KindEdges && r.kind != KindMessages {
		return nil, corrupt("unknown partition kind %d", r.kind)
	}
	if hdr[4]&^flagWeighted != 0 {
		return nil, corrupt("unknown flags %#x", hdr[4])
	}
	r.weighted = hdr[4]&flagWeighted != 0
	return r, nil
}

// Kind returns the partition kind (KindEdges or KindMessages).
func (r *Reader) Kind() byte { return r.kind }

// Weighted reports whether edge records carry weights.
func (r *Reader) Weighted() bool { return r.weighted }

// Records returns the number of records decoded so far.
func (r *Reader) Records() int64 { return r.records }

// Close closes the underlying file, if any.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}

func (r *Reader) readFull(b []byte) error {
	if _, err := io.ReadFull(r.r, b); err != nil {
		return corrupt("truncated (%v)", err)
	}
	r.crc = crc64.Update(r.crc, crcTable, b)
	return nil
}

func (r *Reader) readUvarint(what string) (uint64, error) {
	var v uint64
	var n int
	for shift := uint(0); ; shift += 7 {
		if n == binary.MaxVarintLen64 {
			return 0, corrupt("%s varint too long", what)
		}
		b, err := r.r.ReadByte()
		if err != nil {
			return 0, corrupt("truncated %s (%v)", what, err)
		}
		var one [1]byte
		one[0] = b
		r.crc = crc64.Update(r.crc, crcTable, one[:])
		n++
		if shift == 63 && b > 1 {
			return 0, corrupt("%s varint overflows uint64", what)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if n != uvarintLen(v) {
		return 0, corrupt("non-minimal %s varint", what)
	}
	return v, nil
}

// next reads the next record body into r.buf, or returns io.EOF after
// verifying the end marker, count and trailer.
func (r *Reader) next() error {
	if r.done {
		return io.EOF
	}
	rlen, err := r.readUvarint("record length")
	if err != nil {
		return err
	}
	if rlen == 0 {
		cnt, err := r.readUvarint("record count")
		if err != nil {
			return err
		}
		if cnt != uint64(r.records) {
			return corrupt("record count %d, decoded %d", cnt, r.records)
		}
		want := r.crc
		var tr [trailerLen]byte
		if _, err := io.ReadFull(r.r, tr[:]); err != nil {
			return corrupt("truncated trailer (%v)", err)
		}
		if got := binary.LittleEndian.Uint64(tr[:]); got != want {
			return corrupt("checksum mismatch: file %#x, computed %#x", got, want)
		}
		if _, err := r.r.ReadByte(); err != io.EOF {
			return corrupt("trailing bytes after trailer")
		}
		r.done = true
		return io.EOF
	}
	if rlen > MaxRecordBytes {
		return corrupt("record of %d bytes exceeds MaxRecordBytes", rlen)
	}
	if uint64(cap(r.buf)) < rlen {
		r.buf = make([]byte, rlen)
	}
	r.buf = r.buf[:rlen]
	if err := r.readFull(r.buf); err != nil {
		return err
	}
	r.records++
	return nil
}

func bufUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corrupt("truncated %s", what)
	}
	if n != uvarintLen(v) {
		return 0, nil, corrupt("non-minimal %s varint", what)
	}
	return v, b[n:], nil
}

// NextMessage returns the next message record's destination and payload, or
// io.EOF at the verified end of the partition. The payload aliases an
// internal buffer valid until the next call.
func (r *Reader) NextMessage() (graph.VertexID, []byte, error) {
	if r.kind != KindMessages {
		return 0, nil, fmt.Errorf("ooc: NextMessage on kind-%d partition", r.kind)
	}
	if err := r.next(); err != nil {
		return 0, nil, err
	}
	dst, rest, err := bufUvarint(r.buf, "message destination")
	if err != nil {
		return 0, nil, err
	}
	if dst > math.MaxUint32 {
		return 0, nil, corrupt("message destination %d overflows VertexID", dst)
	}
	return graph.VertexID(dst), rest, nil
}

// NextEdges returns the next edge record: the vertex, its neighbors, and the
// parallel weights (nil when unweighted), or io.EOF at the verified end of
// the partition. The slices alias internal buffers valid until the next call.
func (r *Reader) NextEdges() (graph.VertexID, []graph.VertexID, []float32, error) {
	if r.kind != KindEdges {
		return 0, nil, nil, fmt.Errorf("ooc: NextEdges on kind-%d partition", r.kind)
	}
	if err := r.next(); err != nil {
		return 0, nil, nil, err
	}
	v64, rest, err := bufUvarint(r.buf, "edge vertex")
	if err != nil {
		return 0, nil, nil, err
	}
	if v64 > math.MaxUint32 {
		return 0, nil, nil, corrupt("edge vertex %d overflows VertexID", v64)
	}
	deg64, rest, err := bufUvarint(rest, "edge degree")
	if err != nil {
		return 0, nil, nil, err
	}
	// Every neighbor costs at least one byte (plus 4 for a weight), so the
	// remaining body bounds the degree: a hostile count cannot force a
	// larger allocation than the record it arrived in.
	per := uint64(1)
	if r.weighted {
		per = 5
	}
	if deg64*per > uint64(len(rest)) {
		return 0, nil, nil, corrupt("degree %d exceeds record body", deg64)
	}
	deg := int(deg64)
	if cap(r.nbrs) < deg {
		r.nbrs = make([]graph.VertexID, deg)
	}
	r.nbrs = r.nbrs[:deg]
	for i := 0; i < deg; i++ {
		u, r2, err := bufUvarint(rest, "neighbor")
		if err != nil {
			return 0, nil, nil, err
		}
		if u > math.MaxUint32 {
			return 0, nil, nil, corrupt("neighbor %d overflows VertexID", u)
		}
		r.nbrs[i] = graph.VertexID(u)
		rest = r2
	}
	var wts []float32
	if r.weighted {
		if len(rest) != 4*deg {
			return 0, nil, nil, corrupt("%d weight bytes for degree %d", len(rest), deg)
		}
		if cap(r.wts) < deg {
			r.wts = make([]float32, deg)
		}
		r.wts = r.wts[:deg]
		for i := 0; i < deg; i++ {
			r.wts[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		wts = r.wts
		rest = rest[4*deg:]
	}
	if len(rest) != 0 {
		return 0, nil, nil, corrupt("%d trailing bytes in edge record", len(rest))
	}
	return graph.VertexID(v64), r.nbrs, wts, nil
}
