package bppa

import (
	"math"
	"testing"

	"vcmt/internal/engine"
	"vcmt/internal/graph"
	"vcmt/internal/tasks"
)

// TestSingleTaskSatisfiesLinearComm: HashMin Connected Components is the
// paper's example of a balanced practical Pregel algorithm — every vertex
// sends at most d(v) messages per round.
func TestSingleTaskSatisfiesLinearComm(t *testing.T) {
	g := graph.GenerateChungLu(2000, 8000, 2.5, 3)
	part := graph.HashPartition(2000, 4)
	inst := Instrument(g, tasks.CCProgram(2000))
	e := engine.New[tasks.LabelMsg](g, part, inst, nil, engine.Options[tasks.LabelMsg]{Workers: 1})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rep := inst.Report()
	if !rep.SatisfiesLinearComm(1.0) {
		t.Fatalf("CC must send at most d(v) per round, ratio %.2f", rep.MaxSendRatio)
	}
	// Small-world graph: diameter ~ log n, so HashMin is log-round here.
	if !rep.SatisfiesLogRounds(3) {
		t.Fatalf("CC on a small-world graph should be ~log rounds, got %d for n=%d",
			rep.Rounds, rep.N)
	}
	if !rep.IsBPPA(3) {
		t.Fatal("CC should satisfy the measurable BPPA conditions here")
	}
}

// TestMultiProcessingViolatesLinearComm demonstrates §2.4's argument: with
// W walks per vertex running concurrently, vertices send far more than
// O(d(v)) messages per round — multi-processing breaks the
// linear-communication condition.
func TestMultiProcessingViolatesLinearComm(t *testing.T) {
	g := graph.GenerateChungLu(1000, 4000, 2.5, 7)
	part := graph.HashPartition(1000, 4)
	const W = 128
	job := tasks.NewBPPR(g, part, tasks.BPPRConfig{WalksPerNode: W, Seed: 5})
	inst := Instrument(g, job.MCProgram(W))
	e := engine.New[tasks.WalkMsg](g, part, inst, nil, engine.Options[tasks.WalkMsg]{
		Weight:  func(m tasks.WalkMsg) int64 { return int64(m.Count) },
		Workers: 1,
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rep := inst.Report()
	if rep.SatisfiesLinearComm(3) {
		t.Fatalf("concurrent BPPR must violate linear communication, ratio %.2f", rep.MaxSendRatio)
	}
}

// TestSerializedWalksViolateLogRounds demonstrates the other horn of the
// dilemma: processing the walks one at a time respects per-round
// communication bounds but needs far more than O(log n) rounds
// (O(L·W) in the paper's notation).
func TestSerializedWalksViolateLogRounds(t *testing.T) {
	g := graph.GenerateChungLu(1000, 4000, 2.5, 9)
	part := graph.HashPartition(1000, 4)
	job := tasks.NewBPPR(g, part, tasks.BPPRConfig{WalksPerNode: 32, Seed: 5})
	totalRounds := 0
	var worstRatio float64
	// One walk per batch: 32 sequential single-walk executions.
	for b := 0; b < 32; b++ {
		inst := Instrument(g, job.MCProgram(1))
		e := engine.New[tasks.WalkMsg](g, part, inst, nil, engine.Options[tasks.WalkMsg]{Workers: 1})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		rep := inst.Report()
		totalRounds += rep.Rounds
		worstRatio = math.Max(worstRatio, rep.MaxSendRatio)
	}
	// Each single-walk round sends at most one message per vertex per
	// in-flight walk: communication is modest...
	if worstRatio > 8 {
		t.Fatalf("serialized walks should have modest per-round sends, got %.2f", worstRatio)
	}
	// ...but the total round count is way past logarithmic.
	logBound := 3 * math.Log2(1000)
	if float64(totalRounds) <= logBound {
		t.Fatalf("serialized walks should blow the round budget: %d rounds vs bound %.0f",
			totalRounds, logBound)
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{N: 1024, Rounds: 10, MaxSendRatio: 2}
	if !r.SatisfiesLogRounds(1) {
		t.Fatal("10 rounds within log2(1024)=10")
	}
	if r.SatisfiesLogRounds(0.5) {
		t.Fatal("10 rounds not within 5")
	}
	if !r.SatisfiesLinearComm(2) || r.SatisfiesLinearComm(1.5) {
		t.Fatal("linear-comm threshold wrong")
	}
	if (Report{N: 1, Rounds: 100}).SatisfiesLogRounds(1) != true {
		t.Fatal("degenerate n must pass")
	}
}
