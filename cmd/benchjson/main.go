// Command benchjson runs a Go benchmark selection and writes the results
// as machine-readable JSON, for CI artifacts (e.g. BENCH_engine.json) that
// downstream tooling can diff across commits without scraping test output.
//
// Usage:
//
//	benchjson -bench 'BenchmarkEngineWorkers' -pkg ./internal/engine \
//	    -benchtime 2x -out BENCH_engine.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark line: the canonical ns/op plus any custom
// metrics the benchmark reported (b.ReportMetric units).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole artifact.
type Output struct {
	Package   string   `json:"package"`
	Bench     string   `json:"bench"`
	GoVersion string   `json:"go_version"`
	Results   []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		out       = flag.String("out", "", "output JSON path (default stdout)")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, *pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("go test: %v\n%s", err, buf.String())
	}

	o := Output{Package: *pkg, Bench: *bench, Results: parse(&buf)}
	if v, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		o.GoVersion = strings.TrimSpace(string(v))
	}
	if len(o.Results) == 0 {
		log.Fatalf("no benchmark results matched %q in %s", *bench, *pkg)
	}

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d results to %s\n", len(o.Results), *out)
}

// parse extracts "BenchmarkX-N  iters  v1 unit1  v2 unit2 ..." lines from
// go test output.
func parse(r *bytes.Buffer) []Result {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results
}
