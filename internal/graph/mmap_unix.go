//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapBinaryFile maps a v3 dump read-only and aliases the CSR arrays
// straight into the mapping — load cost becomes a header check, one CRC
// sweep and the structural validation scan, with the section bytes served
// from the page cache on demand. handled=false asks the caller to fall
// back to the streaming loader (v2 file, short or unopenable file, a
// big-endian host, or mmap refusing the file); handled=true means the
// outcome — graph or corruption error — is final.
//
// On success the mapping is deliberately never unmapped: loaded graphs are
// immutable, process-lifetime objects shared by every job, exactly like the
// generator-cache replicas. A validation failure unmaps before returning.
func mmapBinaryFile(path string) (*Graph, bool, error) {
	if !hostLittleEndian {
		return nil, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, nil // the stream loader reports the canonical error
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || !st.Mode().IsRegular() {
		return nil, false, nil
	}
	size := st.Size()
	if size < binaryHeaderBytes+binaryTrailerBytes || size > int64(maxInt) {
		return nil, false, nil
	}
	var hdr [binaryHeaderBytes]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, false, nil
	}
	h, err := parseBinaryHeader(hdr[:])
	if err != nil || h.version != binaryVersion {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, nil
	}
	g, err := parseBinaryImage(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, true, err
	}
	return g, true, nil
}

const maxInt = int(^uint(0) >> 1)
