package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBPPRSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-task", "BPPR", "-exp", "3", "-workload", "24"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"training BPPR on DBLP", "M*(W)", "optimized schedule for workload 24"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunMSSPSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-task", "MSSP", "-exp", "3", "-workload", "16"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "optimized schedule for workload 16") {
		t.Fatalf("missing schedule line in output:\n%s", sb.String())
	}
}

func TestRunAdaptiveWritesReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	var sb strings.Builder
	err := run([]string{
		"-task", "BPPR", "-exp", "3", "-workload", "24",
		"-adaptive", "-report", report,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "adaptive run:") || !strings.Contains(out, "predicted") {
		t.Fatalf("missing adaptive summary in output:\n%s", out)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema   string `json:"schema"`
		Adaptive *struct {
			Predictions []json.RawMessage `json:"predictions"`
		} `json:"adaptive"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema == "" {
		t.Fatal("report missing schema")
	}
	if rep.Adaptive == nil || len(rep.Adaptive.Predictions) == 0 {
		t.Fatal("adaptive report section missing or empty")
	}
}

func TestRunRejectsUnknownTask(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-task", "NOPE"}, &sb); err == nil {
		t.Fatal("want error for unknown task")
	}
}
