package rpcrt

import (
	"encoding/binary"
	"fmt"
	"net/rpc"
	"time"

	"vcmt/internal/ckpt"
	"vcmt/internal/graph"
	"vcmt/internal/obs"
	"vcmt/internal/wire"
)

// defaultRPCTimeout bounds every master->worker and worker->worker call:
// net/rpc's Client.Call blocks forever, so a hung or dead peer would
// otherwise wedge the whole cluster.
const defaultRPCTimeout = 30 * time.Second

// callTimeout is Client.Call with a deadline. d <= 0 disables the bound.
func callTimeout(cl *rpc.Client, method string, args, reply any, d time.Duration) error {
	if d <= 0 {
		return cl.Call(method, args, reply)
	}
	call := cl.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case c := <-call.Done:
		return c.Error
	case <-t.C:
		return fmt.Errorf("rpcrt: %s timed out after %v", method, d)
	}
}

// Section names inside a worker snapshot.
const (
	wsecMeta     = "meta"
	wsecInbox    = "inbox"
	wsecCounters = "counters"
	wsecProg     = "prog"
)

// ckptManager builds the worker's checkpoint manager: all workers share one
// directory, isolated by per-worker file prefixes.
func ckptManager(dir string, id int) *ckpt.Manager {
	return &ckpt.Manager{Dir: dir, Prefix: fmt.Sprintf("w%d-", id), Keep: 1}
}

// CkptArgs asks a worker to checkpoint its barrier state into Dir. Trace
// is the master-side checkpoint span to parent the worker's span under
// (0 = tracing off).
type CkptArgs struct {
	Dir   string
	Round int
	Trace uint64
}

// Checkpoint snapshots the worker's superstep state — the sorted current
// inbox (the messages the next compute will consume), the conservation
// counters, and the program state including RNG streams — into a
// checksummed file. It replies with the bytes written. The master calls it
// at the barrier after Advance, so pending and outbox are empty by
// construction.
func (w *Worker) Checkpoint(args CkptArgs, reply *int64) error {
	if w.dead.Load() {
		return w.down()
	}
	if w.prog == nil {
		return fmt.Errorf("rpcrt: no job on worker %d", w.id)
	}
	span := w.tracer.Begin(obs.SpanID(args.Trace), "checkpoint", "ckpt",
		workerProc(w.id), workerComputeTrack, obs.L("round", fmt.Sprint(args.Round)))
	snap := &ckpt.Snapshot{Step: args.Round}

	// Checkpoint sections reuse the runtime's wire codec: meta is a
	// Control frame (kind = checkpoint, round = barrier superstep) and the
	// inbox is an Envelopes frame, so snapshots share the delivery path's
	// framing, versioning and corruption detection. The trace context is
	// zero on purpose: snapshots outlive the run that wrote them, so a
	// span id would be meaningless (and nondeterministic) on restore.
	snap.Add(wsecMeta, wire.EncodeControl(nil, wire.ControlCheckpoint, args.Round, 0))

	// The inbox is flattened in group order; groups are rebuilt on restore
	// by splitting on destination change (Advance groups by destination).
	var flat []Message
	for _, msgs := range w.cur {
		flat = append(flat, msgs...)
	}
	snap.Add(wsecInbox, wire.EncodeEnvelopes(nil, flat))

	w.statsMu.Lock()
	ctr := make([]byte, 0, 4+len(w.sentByPeer)*16+8+32)
	ctr = binary.LittleEndian.AppendUint32(ctr, uint32(w.nPeer))
	for _, n := range w.sentByPeer {
		ctr = binary.LittleEndian.AppendUint64(ctr, uint64(n))
	}
	for _, n := range w.recvByPeer {
		ctr = binary.LittleEndian.AppendUint64(ctr, uint64(n))
	}
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.retries))
	// Byte/frame counters are checkpointed alongside the message counters
	// so a recovered run re-accumulates them during silent replay exactly
	// as a fault-free run would — the recovery determinism contract covers
	// exact wire bytes too.
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.sentBytes))
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.recvBytes))
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.sentFrames))
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.recvFrames))
	w.statsMu.Unlock()
	snap.Add(wsecCounters, ctr)

	prog, err := w.prog.saveState()
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d saveState: %w", w.id, err)
	}
	snap.Add(wsecProg, prog)

	bytes, err := ckptManager(args.Dir, w.id).Save(snap)
	if err != nil {
		w.tracer.End(span, obs.L("error", err.Error()))
		return fmt.Errorf("rpcrt: worker %d checkpoint: %w", w.id, err)
	}
	w.tracer.End(span, obs.L("bytes", fmt.Sprint(bytes)))
	*reply = bytes
	return nil
}

// RestoreArgs asks a worker to reload its latest checkpoint from Dir.
// Trace is the master-side recovery span to parent the worker's restore
// span under (0 = tracing off).
type RestoreArgs struct {
	Dir   string
	Trace uint64
}

// Restore rolls the worker back to its latest checkpoint: pending and
// outboxes are discarded (they belong to the crashed superstep), the
// current inbox, counters and program state are reloaded. The master
// re-broadcasts StartJob first, so restarted and surviving workers restore
// through the same code path.
func (w *Worker) Restore(args RestoreArgs, _ *struct{}) error {
	if w.dead.Load() {
		return w.down()
	}
	if w.prog == nil {
		return fmt.Errorf("rpcrt: no job on worker %d", w.id)
	}
	span := w.tracer.Begin(obs.SpanID(args.Trace), "restore", "ckpt",
		workerProc(w.id), workerComputeTrack)
	defer w.tracer.End(span)
	snap, _, err := ckptManager(args.Dir, w.id).Latest()
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d restore: %w", w.id, err)
	}
	if snap == nil {
		return fmt.Errorf("rpcrt: worker %d restore: no checkpoint in %s", w.id, args.Dir)
	}

	kind, round, _, err := wire.DecodeControl(snap.Get(wsecMeta))
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d restore meta: %w", w.id, err)
	}
	if kind != wire.ControlCheckpoint {
		return fmt.Errorf("rpcrt: worker %d restore: meta control kind %d", w.id, kind)
	}
	w.round = round

	w.mu.Lock()
	w.pending = make(map[graph.VertexID][]Message)
	w.mu.Unlock()
	for p := range w.outbox {
		w.outbox[p] = w.outbox[p][:0]
	}
	w.sent = 0

	flat, err := wire.DecodeEnvelopes(snap.Get(wsecInbox), nil)
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d restore inbox: %w", w.id, err)
	}
	w.cur = w.cur[:0]
	var group []Message
	for _, m := range flat {
		if len(group) > 0 && group[len(group)-1].Dst != m.Dst {
			w.cur = append(w.cur, group)
			group = nil
		}
		group = append(group, m)
	}
	if len(group) > 0 {
		w.cur = append(w.cur, group)
	}

	ctr := snap.Get(wsecCounters)
	if want := 4 + w.nPeer*16 + 8 + 32; len(ctr) != want {
		return fmt.Errorf("rpcrt: worker %d restore: counters section is %d bytes, want %d", w.id, len(ctr), want)
	}
	if got := int(binary.LittleEndian.Uint32(ctr)); got != w.nPeer {
		return fmt.Errorf("rpcrt: worker %d restore: snapshot has %d peers, cluster has %d", w.id, got, w.nPeer)
	}
	ctr = ctr[4:]
	w.statsMu.Lock()
	for p := range w.sentByPeer {
		w.sentByPeer[p] = int64(binary.LittleEndian.Uint64(ctr))
		ctr = ctr[8:]
	}
	for p := range w.recvByPeer {
		w.recvByPeer[p] = int64(binary.LittleEndian.Uint64(ctr))
		ctr = ctr[8:]
	}
	w.retries = int64(binary.LittleEndian.Uint64(ctr))
	w.sentBytes = int64(binary.LittleEndian.Uint64(ctr[8:]))
	w.recvBytes = int64(binary.LittleEndian.Uint64(ctr[16:]))
	w.sentFrames = int64(binary.LittleEndian.Uint64(ctr[24:]))
	w.recvFrames = int64(binary.LittleEndian.Uint64(ctr[32:]))
	w.statsMu.Unlock()

	if err := w.prog.loadState(snap.Get(wsecProg)); err != nil {
		return fmt.Errorf("rpcrt: worker %d loadState: %w", w.id, err)
	}
	return nil
}

// ReconnectArgs tells a worker that peer Peer now listens at Addr.
type ReconnectArgs struct {
	Peer int
	Addr string
}

// Reconnect re-dials a restarted peer.
func (w *Worker) Reconnect(args ReconnectArgs, _ *struct{}) error {
	if w.dead.Load() {
		return w.down()
	}
	if args.Peer < 0 || args.Peer >= len(w.peers) {
		return fmt.Errorf("rpcrt: reconnect to unknown peer %d", args.Peer)
	}
	if old := w.peers[args.Peer]; old != nil {
		old.Close()
	}
	cl, err := rpc.Dial("tcp", args.Addr)
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d redial peer %d: %w", w.id, args.Peer, err)
	}
	w.peers[args.Peer] = cl
	return nil
}
