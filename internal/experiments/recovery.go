package experiments

import (
	"fmt"
	"io"
	"os"

	"vcmt/internal/batch"
	"vcmt/internal/fault"
	"vcmt/internal/graph"
	"vcmt/internal/sim"
	"vcmt/internal/tasks"
)

// This file extends the evaluation beyond the paper: the fault-tolerance
// sweep prices superstep checkpointing and crash recovery with the
// simulator's cost model. Shorter intervals pay more checkpoint-write time
// but lose fewer supersteps per crash; the sweep locates the trade-off for
// the paper's MSSP setting.

// RecoveryPoint is one checkpoint-interval setting of the sweep, run twice
// on identical inputs: once clean (checkpoint overhead only) and once with
// the injected crash schedule (overhead plus rollback and replay). The
// deterministic-recovery contract guarantees both runs report identical
// rounds and message statistics.
type RecoveryPoint struct {
	Interval int
	Clean    sim.JobResult
	Faulted  sim.JobResult
}

// RecoveryResult is the fault-tolerance sweep: a checkpoint-free baseline
// plus one point per interval.
type RecoveryResult struct {
	Baseline   sim.JobResult
	CrashSteps []int
	Points     []RecoveryPoint
}

// recoveryIntervals is the doubling sweep of checkpoint intervals.
var recoveryIntervals = []int{1, 2, 4, 8, 16}

// FigureRecovery sweeps the checkpoint interval for the paper's MSSP
// setting on DBLP/Galaxy-8 under a fixed two-crash schedule.
func FigureRecovery(o Options) (RecoveryResult, error) {
	d, err := graph.Dataset("DBLP")
	if err != nil {
		return RecoveryResult{}, err
	}
	g := d.Load()
	s := setting{
		dataset: "DBLP", cluster: sim.Galaxy8, machines: 8,
		system: sim.PregelPlus, task: MSSP, paperW: 512, seed: o.seed(),
	}
	replicaW := s.replicaWorkload(o)
	cfg := s.jobConfig(d, replicaW)
	part := graph.HashPartition(g.NumVertices(), cfg.Cluster.Machines)
	sources := pickSources(g.NumVertices(), replicaW, s.seed)
	// Both crashes land well inside the run (MSSP on the DBLP replica takes
	// ~11 supersteps) and past the step-1 checkpoint every interval cuts.
	crashSteps := []int{3, 6}

	runOne := func(interval int, crashes []int) (sim.JobResult, error) {
		mcfg := tasks.MSSPConfig{
			Sources: sources, Mirror: s.system.Mirror, Seed: o.seed(),
			MaxRounds: 5000, Workers: o.Workers,
		}
		if interval > 0 {
			dir, err := os.MkdirTemp("", "vcmt-recovery-")
			if err != nil {
				return sim.JobResult{}, err
			}
			defer os.RemoveAll(dir)
			mcfg.CheckpointDir = dir
			mcfg.CheckpointInterval = interval
		}
		if len(crashes) > 0 {
			spec := ""
			for _, step := range crashes {
				spec += fmt.Sprintf("crash:worker=0,step=%d;", step)
			}
			plan, err := fault.Parse(spec)
			if err != nil {
				return sim.JobResult{}, err
			}
			mcfg.Fault = plan
		}
		job, err := tasks.NewMSSP(g, part, mcfg)
		if err != nil {
			return sim.JobResult{}, err
		}
		return batch.Run(job, cfg, batch.Single(replicaW))
	}

	out := RecoveryResult{CrashSteps: crashSteps}
	if out.Baseline, err = runOne(0, nil); err != nil {
		return RecoveryResult{}, err
	}
	for _, ival := range recoveryIntervals {
		p := RecoveryPoint{Interval: ival}
		if p.Clean, err = runOne(ival, nil); err != nil {
			return RecoveryResult{}, err
		}
		if p.Faulted, err = runOne(ival, crashSteps); err != nil {
			return RecoveryResult{}, err
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// WriteRecovery renders the fault-tolerance sweep as an aligned table.
func WriteRecovery(w io.Writer, res RecoveryResult) {
	fmt.Fprintf(w, "== Recovery: runtime vs checkpoint interval under %d injected crashes (MSSP 512, DBLP, Galaxy-8) ==\n",
		len(res.CrashSteps))
	rows := [][]string{{"interval", "clean", "ckpt-cost", "faulted", "recovery-cost", "ckpts", "rounds-lost"}}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Interval),
			fmt.Sprintf("%.1fs", p.Clean.Seconds),
			fmt.Sprintf("%.1fs", p.Clean.CheckpointSeconds),
			fmt.Sprintf("%.1fs", p.Faulted.Seconds),
			fmt.Sprintf("%.1fs", p.Faulted.RecoverySeconds),
			fmt.Sprintf("%d", p.Faulted.CheckpointsWritten),
			fmt.Sprintf("%d", p.Faulted.RoundsLost),
		})
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "  baseline (no checkpoints, no faults): %.1fs over %d rounds\n\n",
		res.Baseline.Seconds, res.Baseline.Rounds)
}
