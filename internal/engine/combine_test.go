package engine

import (
	"testing"

	"vcmt/internal/graph"
	"vcmt/internal/sim"
	"vcmt/internal/vcapi"
)

// keyedProg sends two distinct streams (keys 1 and 2) from every vertex to
// vertex 7 and records the combined inbox.
type keyedProg struct{ got []hopMsg }

// keyed messages reuse hopMsg with Hop encoding key*100 + value.
func (p *keyedProg) Seed(ctx vcapi.Context[hopMsg]) {
	c := ctx.(*Context[hopMsg])
	for _, v := range c.OwnedVertices() {
		if v == 7 {
			continue
		}
		c.Send(7, hopMsg{Hop: 100 + int32(v)}) // key 1, value v
		c.Send(7, hopMsg{Hop: 200 + int32(v)}) // key 2, value v
	}
}

func (p *keyedProg) Compute(ctx vcapi.Context[hopMsg], v graph.VertexID, msgs []hopMsg) {
	p.got = append(p.got, msgs...)
}

func keyedOptions(atDelivery bool) Options[hopMsg] {
	return Options[hopMsg]{
		// Sum values within a key, preserving the key's hundreds digit.
		Combiner: func(a, b hopMsg) hopMsg {
			return hopMsg{Hop: a.Hop + b.Hop%100}
		},
		CombinerKey:       func(m hopMsg) uint64 { return uint64(m.Hop / 100) },
		CombineAtDelivery: atDelivery,
	}
}

// TestKeyedCombinerGroupsPerKey checks that CombinerKey restricts the fold
// to same-key messages: vertex 7 must receive exactly one message per key,
// and the identical result must come out of both combine timings.
func TestKeyedCombinerGroupsPerKey(t *testing.T) {
	g := graph.GenerateRing(10)
	part := graph.HashPartition(10, 4)
	for _, atDelivery := range []bool{false, true} {
		prog := &keyedProg{}
		e := New[hopMsg](g, part, prog, nil, keyedOptions(atDelivery))
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(prog.got) != 2 {
			t.Fatalf("atDelivery=%v: want one message per key (2), got %d", atDelivery, len(prog.got))
		}
		// Sum of 0..9 except 7 is 38; key k's representative carries k*100.
		for i, want := range []int32{138, 238} {
			if prog.got[i].Hop != want {
				t.Fatalf("atDelivery=%v: message %d = %d want %d", atDelivery, i, prog.got[i].Hop, want)
			}
		}
	}
}

// TestSendTimeCombiningIsDefault checks the timing selection logic: a
// combiner alone opts into send-time merging, CombineAtDelivery restores
// the old fold point, and spill mode always combines at delivery (spilled
// envelopes cannot be merged retroactively).
func TestSendTimeCombiningIsDefault(t *testing.T) {
	g := graph.GenerateRing(10)
	part := graph.HashPartition(10, 2)
	sum := func(a, b hopMsg) hopMsg { return hopMsg{Hop: a.Hop + b.Hop} }

	if e := New[hopMsg](g, part, &combSumProg{}, nil, Options[hopMsg]{Combiner: sum}); !e.combineAtSend {
		t.Fatal("combiner alone should combine at send time")
	}
	if e := New[hopMsg](g, part, &combSumProg{}, nil, Options[hopMsg]{
		Combiner: sum, CombineAtDelivery: true,
	}); e.combineAtSend {
		t.Fatal("CombineAtDelivery should disable send-time combining")
	}
	if e := New[hopMsg](g, part, &combSumProg{}, nil, Options[hopMsg]{
		Combiner: sum,
		Spill:    &SpillOptions[hopMsg]{Codec: hopCodec{}, Dir: t.TempDir(), ThresholdMsgs: 4},
	}); e.combineAtSend {
		t.Fatal("spill mode must combine at delivery")
	}
}

// TestCombinedAtSendStatFlowsToObserver checks that the merge counter
// reaches sim.RoundStats for send-time runs and stays zero for
// delivery-time runs (the counter must never leak into reports, but it
// must be visible to the observer hook for the metrics registry).
func TestCombinedAtSendStatFlowsToObserver(t *testing.T) {
	g := graph.GenerateRing(10)
	part := graph.HashPartition(10, 4)
	run := func(atDelivery bool) int64 {
		rec := &statObserver{}
		r := sim.NewRun(sim.JobConfig{
			Cluster:  sim.Galaxy8.WithMachines(4),
			System:   sim.PregelPlus,
			Observer: rec,
		})
		r.BeginBatch()
		opts := keyedOptions(atDelivery)
		e := New[hopMsg](g, part, &keyedProg{}, r, opts)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.combined
	}
	atSend := run(false)
	// 9 vertices send 2 messages each; 2 survive per key pair on each
	// source machine, so some merges must have happened.
	if atSend <= 0 {
		t.Fatalf("send-time run reported %d merges, want > 0", atSend)
	}
	if atDelivery := run(true); atDelivery != 0 {
		t.Fatalf("delivery-time run reported %d send-time merges, want 0", atDelivery)
	}
}

type statObserver struct{ combined int64 }

func (s *statObserver) OnBatchStart(int, float64) {}
func (s *statObserver) OnRound(o sim.RoundObservation) {
	s.combined += o.Stats.CombinedAtSend
}
