package difftest

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"vcmt/internal/fault"
	"vcmt/internal/graph"
	"vcmt/internal/obs"
	"vcmt/internal/sim"
	"vcmt/internal/tasks"
)

// The fault axis of the differential harness: for each task, a run that
// crashes at an early, middle and final superstep and recovers from its
// checkpoint must be indistinguishable from the fault-free run — same
// per-round message counts (replays are silent), bit-identical results,
// and an identical priced verdict once the recovery-specific counters are
// stripped. Checked at worker-pool sizes 1 and 8.

// faultWorkers are the engine pool sizes the recovery contract is checked
// at (the acceptance grid).
var faultWorkers = []int{1, 8}

// crashPlan builds a one-crash plan; difftest plans always name worker 0
// because the engine rolls the whole simulated cluster back regardless of
// which machine crashed.
func crashPlan(t *testing.T, step int) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(fmt.Sprintf("crash:worker=0,step=%d", step))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// crashSteps picks an early, middle and final superstep of an R-round run.
// Superstep 1 is never a fault point (the step-1 barrier is always
// checkpointed before any crash can fire).
func crashSteps(t *testing.T, rounds int) []int {
	t.Helper()
	if rounds < 3 {
		t.Fatalf("run too short for the fault axis: %d rounds", rounds)
	}
	return []int{2, (rounds + 2) / 2, rounds}
}

// normalizeRecovery strips the recovery-specific counters from a priced
// result: the recovery surcharge leaves Seconds, and the crash accounting
// fields are zeroed. Everything else must match the fault-free run exactly.
func normalizeRecovery(res sim.JobResult) sim.JobResult {
	res.Seconds -= res.RecoverySeconds
	res.Recoveries = 0
	res.RoundsLost = 0
	res.RecoverySeconds = 0
	return res
}

// requireRecoveredVerdict compares a recovered run's priced result against
// the fault-free baseline modulo the recovery counters.
func requireRecoveredVerdict(t *testing.T, label string, base, got sim.JobResult) {
	t.Helper()
	if got.Recoveries != 1 {
		t.Fatalf("%s: recoveries=%d want 1", label, got.Recoveries)
	}
	nb, ng := normalizeRecovery(base), normalizeRecovery(got)
	if d := math.Abs(nb.Seconds - ng.Seconds); d > 1e-9*math.Max(1, math.Abs(nb.Seconds)) {
		t.Fatalf("%s: seconds modulo recovery diverge: %v vs %v", label, nb.Seconds, ng.Seconds)
	}
	nb.Seconds, ng.Seconds = 0, 0
	if nb != ng {
		t.Fatalf("%s: priced result diverges modulo recovery:\nfault-free %+v\nrecovered  %+v", label, nb, ng)
	}
}

// TestMSSPCrashRecoveryDifferential: MSSP with a crash at each position of
// the run, at both worker counts.
func TestMSSPCrashRecoveryDifferential(t *testing.T) {
	seed := uint64(5)
	g := graph.WithUniformWeights(
		graph.GenerateChungLu(nVertices, nEdges, 2.5, seed), 1, 4, seed+100)
	part := graph.HashPartition(nVertices, nMachines)
	sources := []graph.VertexID{0, 35, 211}

	for _, workers := range faultWorkers {
		run := func(plan *fault.Plan) (*tasks.MSSPJob, *roundRecorder, sim.JobResult) {
			job, err := tasks.NewMSSP(g, part, tasks.MSSPConfig{
				Sources: sources, Seed: seed, Workers: workers,
				CheckpointDir: t.TempDir(), CheckpointInterval: 2, Fault: plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			rec := &roundRecorder{}
			r := newRun(rec)
			r.BeginBatch()
			if _, err := job.RunBatch(r, len(sources), 0); err != nil {
				t.Fatal(err)
			}
			return job, rec, r.Result()
		}

		baseJob, baseRec, baseRes := run(nil)
		for _, step := range crashSteps(t, len(baseRec.perRound)) {
			label := fmt.Sprintf("mssp workers=%d crash@%d", workers, step)
			plan := crashPlan(t, step)
			job, rec, res := run(plan)
			if plan.Remaining() != 0 {
				t.Fatalf("%s: crash never fired", label)
			}
			requireSameRounds(t, label, baseRec, rec, workers)
			requireRecoveredVerdict(t, label, baseRes, res)
			for i := range sources {
				for v := 0; v < nVertices; v++ {
					a := baseJob.Distance(i, graph.VertexID(v))
					b := job.Distance(i, graph.VertexID(v))
					if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
						t.Fatalf("%s: src %d v %d: fault-free %v recovered %v",
							label, sources[i], v, a, b)
					}
				}
			}
		}
	}
}

// TestBKHSCrashRecoveryDifferential: the same axis for k-bounded BFS,
// whose short fixed round count makes the final-superstep crash the
// interesting case.
func TestBKHSCrashRecoveryDifferential(t *testing.T) {
	const k = 2
	seed := uint64(6)
	g := graph.GenerateChungLu(nVertices, nEdges, 2.4, seed)
	part := graph.HashPartition(nVertices, nMachines)
	sources := []graph.VertexID{1, 78, 250}

	for _, workers := range faultWorkers {
		run := func(plan *fault.Plan) (*tasks.BKHSJob, *roundRecorder, sim.JobResult) {
			job := tasks.NewBKHS(g, part, tasks.BKHSConfig{
				Sources: sources, K: k, Seed: seed, Workers: workers,
				CheckpointDir: t.TempDir(), CheckpointInterval: 2, Fault: plan,
			})
			rec := &roundRecorder{}
			r := newRun(rec)
			r.BeginBatch()
			if _, err := job.RunBatch(r, len(sources), 0); err != nil {
				t.Fatal(err)
			}
			return job, rec, r.Result()
		}

		baseJob, baseRec, baseRes := run(nil)
		for _, step := range crashSteps(t, len(baseRec.perRound)) {
			label := fmt.Sprintf("bkhs workers=%d crash@%d", workers, step)
			plan := crashPlan(t, step)
			job, rec, res := run(plan)
			if plan.Remaining() != 0 {
				t.Fatalf("%s: crash never fired", label)
			}
			requireSameRounds(t, label, baseRec, rec, workers)
			requireRecoveredVerdict(t, label, baseRes, res)
			for i := range sources {
				if a, b := baseJob.Reached(i), job.Reached(i); a != b {
					t.Fatalf("%s: src %d reached %d vs fault-free %d", label, sources[i], b, a)
				}
			}
		}
	}
}

// TestBPPRCrashRecoveryDifferential: the randomized task is the hard case —
// recovery must restore every machine's RNG lane so the replayed walks are
// the same walks.
func TestBPPRCrashRecoveryDifferential(t *testing.T) {
	const (
		walks = 500
		alpha = 0.2
	)
	seed := uint64(7)
	g := graph.GenerateChungLu(60, 240, 2.5, seed)
	n := g.NumVertices()
	part := graph.HashPartition(n, nMachines)

	for _, workers := range faultWorkers {
		run := func(plan *fault.Plan) (*tasks.BPPRJob, *roundRecorder, sim.JobResult) {
			job := tasks.NewBPPR(g, part, tasks.BPPRConfig{
				Alpha: alpha, WalksPerNode: walks, Seed: seed, Workers: workers,
				CheckpointDir: t.TempDir(), CheckpointInterval: 2, Fault: plan,
			})
			rec := &roundRecorder{}
			r := newRun(rec)
			r.BeginBatch()
			if _, err := job.RunBatch(r, walks, 0); err != nil {
				t.Fatal(err)
			}
			return job, rec, r.Result()
		}

		baseJob, baseRec, baseRes := run(nil)
		for _, step := range crashSteps(t, len(baseRec.perRound)) {
			label := fmt.Sprintf("bppr workers=%d crash@%d", workers, step)
			plan := crashPlan(t, step)
			job, rec, res := run(plan)
			if plan.Remaining() != 0 {
				t.Fatalf("%s: crash never fired", label)
			}
			requireSameRounds(t, label, baseRec, rec, workers)
			requireRecoveredVerdict(t, label, baseRes, res)
			for src := 0; src < n; src++ {
				for v := 0; v < n; v++ {
					a := baseJob.Estimate(graph.VertexID(src), graph.VertexID(v))
					b := job.Estimate(graph.VertexID(src), graph.VertexID(v))
					if a != b {
						t.Fatalf("%s: PPR(%d,%d): fault-free %v recovered %v", label, src, v, a, b)
					}
				}
			}
		}
	}
}

// TestRecoveredReportMatchesFaultFree runs MSSP twice through the full obs
// pipeline and requires the machine-readable run reports to be
// byte-identical once the recovery-specific counters (result fields and
// registry metrics) are stripped — supersteps, per-machine rows, message
// metrics and checkpoint accounting all survive a crash unchanged.
func TestRecoveredReportMatchesFaultFree(t *testing.T) {
	seed := uint64(9)
	g := graph.WithUniformWeights(
		graph.GenerateChungLu(nVertices, nEdges, 2.5, seed), 1, 4, seed+100)
	part := graph.HashPartition(nVertices, nMachines)
	sources := []graph.VertexID{0, 35, 211}
	meta := obs.RunMeta{Task: "MSSP", System: "Pregel+", Cluster: "Galaxy-8",
		Machines: nMachines, Workload: len(sources), Batches: 1, Seed: seed}

	runReport := func(plan *fault.Plan) *obs.RunReport {
		col := obs.NewCollector(obs.CollectorOptions{Registry: obs.NewRegistry()})
		r := sim.NewRun(sim.JobConfig{
			Cluster:  sim.Galaxy8.WithMachines(nMachines),
			System:   sim.PregelPlus,
			Observer: col,
		})
		job, err := tasks.NewMSSP(g, part, tasks.MSSPConfig{
			Sources: sources, Seed: seed, Workers: 2,
			CheckpointDir: t.TempDir(), CheckpointInterval: 2, Fault: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.BeginBatch()
		if _, err := job.RunBatch(r, len(sources), 0); err != nil {
			t.Fatal(err)
		}
		return col.Report(meta, r.Result())
	}

	// stripRecovery removes the counters only a crashed run accumulates and
	// returns the run's sim_seconds gauge (total simulated time, which
	// carries the recovery surcharge and is compared separately).
	stripRecovery := func(rep *obs.RunReport) float64 {
		rep.Result.Seconds -= rep.Result.RecoverySeconds
		rep.Result.Recoveries = 0
		rep.Result.RoundsLost = 0
		rep.Result.RecoverySeconds = 0
		simSeconds := math.NaN()
		kept := rep.Metrics[:0]
		for _, m := range rep.Metrics {
			if strings.HasPrefix(m.Name, "recover") {
				continue
			}
			if m.Name == "sim_seconds" {
				simSeconds = m.Value
				continue
			}
			kept = append(kept, m)
		}
		rep.Metrics = kept
		return simSeconds
	}

	base := runReport(nil)
	got := runReport(crashPlan(t, 4))
	if got.Result.Recoveries != 1 {
		t.Fatalf("recovered report shows %d recoveries, want 1", got.Result.Recoveries)
	}
	recoverySurcharge := got.Result.RecoverySeconds
	baseSim := stripRecovery(base)
	gotSim := stripRecovery(got)
	if d := math.Abs((gotSim - recoverySurcharge) - baseSim); d > 1e-9 {
		t.Fatalf("sim_seconds modulo recovery diverge: fault-free %v recovered %v (surcharge %v)",
			baseSim, gotSim, recoverySurcharge)
	}
	// Seconds can carry float noise from the subtraction; compare and clamp.
	if d := math.Abs(base.Result.Seconds - got.Result.Seconds); d > 1e-9 {
		t.Fatalf("seconds modulo recovery diverge: %v vs %v", base.Result.Seconds, got.Result.Seconds)
	}
	base.Result.Seconds, got.Result.Seconds = 0, 0

	var wantJSON, gotJSON bytes.Buffer
	if err := base.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Fatalf("reports diverge modulo recovery counters:\n--- fault-free ---\n%s\n--- recovered ---\n%s",
			wantJSON.String(), gotJSON.String())
	}
}
