package lma

import (
	"math"
	"testing"
)

func BenchmarkFitPower(b *testing.B) {
	xs := []float64{2, 4, 8, 16, 32, 64}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1.3*math.Pow(x, 1.15) + 7
	}
	for i := 0; i < b.N; i++ {
		if _, err := FitPower(xs, ys, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
