package obs

import "time"

// PhaseBreakdown decomposes time into the four phases of a superstep:
// compute, message delivery over the network, out-of-core spill IO, and the
// synchronization barrier. For simulated runs the segments come from the
// cost model (deterministic); for the real rpcrt runtime they are measured
// with wall-clock Timers.
type PhaseBreakdown struct {
	ComputeSeconds float64 `json:"compute_seconds"`
	NetSeconds     float64 `json:"net_seconds"`
	DiskSeconds    float64 `json:"disk_seconds"`
	BarrierSeconds float64 `json:"barrier_seconds"`
}

// Add accumulates another breakdown into p.
func (p *PhaseBreakdown) Add(q PhaseBreakdown) {
	p.ComputeSeconds += q.ComputeSeconds
	p.NetSeconds += q.NetSeconds
	p.DiskSeconds += q.DiskSeconds
	p.BarrierSeconds += q.BarrierSeconds
}

// Total returns the summed phase time.
func (p PhaseBreakdown) Total() float64 {
	return p.ComputeSeconds + p.NetSeconds + p.DiskSeconds + p.BarrierSeconds
}

// Timer measures one wall-clock span and records it into a histogram.
// Intended for the real runtime (rpcrt) only — wall-clock measurements are
// never part of the deterministic report schema.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing; h may be nil, in which case Stop only returns
// the elapsed seconds.
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed wall-clock seconds into the histogram and
// returns them.
func (t Timer) Stop() float64 {
	sec := time.Since(t.start).Seconds()
	if t.h != nil {
		t.h.Observe(sec)
	}
	return sec
}
