package engine

import (
	"testing"

	"vcmt/internal/graph"
	"vcmt/internal/vcapi"
)

// nopProg is a vertex program that never sends; the fuzz harness drives
// the delivery machinery directly.
type nopProg struct{}

func (nopProg) Seed(vcapi.Context[int32])                             {}
func (nopProg) Compute(vcapi.Context[int32], graph.VertexID, []int32) {}

// FuzzDeliverRouting decodes arbitrary bytes into a batch of envelopes
// emitted from per-machine sources and checks the counting-sort delivery
// invariants on both the sequential and the parallel path:
//
//   - every envelope lands in exactly one inbox segment — the segment of
//     its destination vertex — and no envelope is duplicated or dropped;
//   - segments are chunk-major stable: source machine order, then send
//     order;
//   - the parallel path produces a bit-identical inbox layout to the
//     sequential path (the determinism contract);
//   - after combining, each non-empty segment holds exactly one message,
//     the message count equals the number of non-empty inboxes, and a sum
//     combiner preserves the payload total;
//   - an engine combining at send time ends up with segments bit-identical
//     to the delivery-time engines', before-compute and after-combine.
func FuzzDeliverRouting(f *testing.F) {
	f.Add([]byte{8, 2, 0, 0, 1, 5, 2, 9, 0, 3})
	f.Add([]byte{120, 7, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{16, 1})
	f.Add([]byte{40, 4, 255, 255, 0, 0, 7, 200, 3, 3, 3, 3, 9, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 8 + int(data[0])%120
		k := 1 + int(data[1])%8
		g := graph.GenerateRing(n)
		part := graph.HashPartition(n, k)
		sum := func(a, b int32) int32 { return a + b }

		seq := New[int32](g, part, nopProg{}, nil, Options[int32]{
			Workers: 1, Combiner: sum, CombineAtDelivery: true,
		})
		par := New[int32](g, part, nopProg{}, nil, Options[int32]{
			Workers: 4, Combiner: sum, CombineAtDelivery: true,
		})
		defer par.stopPool()
		send := New[int32](g, part, nopProg{}, nil, Options[int32]{
			Workers: 1, Combiner: sum,
		})
		if !send.combineAtSend {
			t.Fatal("send-time combining should be the default with a combiner")
		}

		// Decode (machine, dst) pairs; payload is the send sequence number.
		// chunks[m] records machine m's emission stream for the expected
		// chunk-major order.
		var total int
		var paySum int64
		wantPerVertex := make([]int, n)
		chunks := make([][]envelope[int32], k)
		for i := 0; i+1 < len(data)-2; i += 2 {
			m := int(data[2+i]) % k
			dst := graph.VertexID(int(data[3+i]) % n)
			env := envelope[int32]{dst: dst, payload: int32(total)}
			d := int(seq.owners[dst])
			seq.emit(m, d, env)
			par.emit(m, d, env)
			send.emit(m, d, env)
			chunks[m] = append(chunks[m], env)
			wantPerVertex[dst]++
			paySum += int64(total)
			total++
		}

		seq.route()
		par.route()

		delivered := 0
		for v := 0; v < n; v++ {
			delivered += len(seq.segment(graph.VertexID(v)))
		}
		if delivered != total {
			t.Fatalf("inbox holds %d messages, %d were sent", delivered, total)
		}
		// Exactly-one-segment: per-vertex counts match the routing table and
		// sum to the total, so no envelope is lost, duplicated or misfiled.
		for v := 0; v < n; v++ {
			gotN := len(seq.segment(graph.VertexID(v)))
			if gotN != wantPerVertex[v] {
				t.Fatalf("vertex %d segment holds %d messages want %d", v, gotN, wantPerVertex[v])
			}
		}
		// Chunk-major stable order inside each segment: sequence numbers
		// must appear in (source machine, send order) — i.e. the same order
		// a single-outbox sequential engine would have appended them.
		for v := 0; v < n; v++ {
			var want []int32
			for m := 0; m < k; m++ {
				for _, env := range chunks[m] {
					if env.dst == graph.VertexID(v) {
						want = append(want, env.payload)
					}
				}
			}
			got := seq.segment(graph.VertexID(v))
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("vertex %d slot %d: payload %d want %d (stable order broken)",
						v, i, got[i], want[i])
				}
			}
		}
		// Parallel path must reproduce the sequential layout bit-for-bit.
		for v := 0; v < n; v++ {
			sv, pv := seq.segment(graph.VertexID(v)), par.segment(graph.VertexID(v))
			if len(sv) != len(pv) {
				t.Fatalf("vertex %d: segment length %d sequential vs %d parallel", v, len(sv), len(pv))
			}
			for i := range sv {
				if sv[i] != pv[i] {
					t.Fatalf("vertex %d slot %d: %d sequential vs %d parallel", v, i, sv[i], pv[i])
				}
			}
		}

		// Combiner invariants on both delivery-time paths, and send-time
		// equivalence: the send-time engine's routed-and-folded segments
		// must be bit-identical to the delivery-time result.
		nonEmpty := 0
		for v := 0; v < n; v++ {
			if wantPerVertex[v] > 0 {
				nonEmpty++
			}
		}
		send.route()
		for i := 0; i < k; i++ {
			send.runTask(phaseCombine, i)
		}
		for _, eng := range []*Engine[int32]{seq, par} {
			for i := 0; i < k; i++ {
				eng.runTask(phaseCombine, i)
			}
			combined := 0
			var got int64
			for v := 0; v < n; v++ {
				seg := eng.segment(graph.VertexID(v))
				combined += len(seg)
				if len(seg) > 1 {
					t.Fatalf("workers=%d: vertex %d still has %d messages after combining",
						eng.workers, v, len(seg))
				}
				if (len(seg) > 0) != (wantPerVertex[v] > 0) {
					t.Fatalf("workers=%d: vertex %d segment presence changed by combining", eng.workers, v)
				}
				for _, m := range seg {
					got += int64(m)
				}
				st := send.segment(graph.VertexID(v))
				if len(st) != len(seg) {
					t.Fatalf("vertex %d: send-time segment length %d vs delivery-time %d", v, len(st), len(seg))
				}
				for i := range seg {
					if st[i] != seg[i] {
						t.Fatalf("vertex %d: send-time payload %d vs delivery-time %d", v, st[i], seg[i])
					}
				}
			}
			if combined != nonEmpty {
				t.Fatalf("workers=%d: combined inbox holds %d messages, %d inboxes were non-empty",
					eng.workers, combined, nonEmpty)
			}
			if got != paySum {
				t.Fatalf("workers=%d: sum combiner lost mass: %d want %d", eng.workers, got, paySum)
			}
		}
	})
}
