// Command vcrun executes one multi-processing job on a simulated cluster
// and reports the cost model's verdict: simulated time, rounds, message
// statistics, memory, disk and network behaviour.
//
// Usage:
//
//	vcrun -task BPPR -dataset DBLP -system Pregel+ -cluster Galaxy-8 \
//	      -workload 160 -batches 4 [-machines 8] [-scale 4096] [-seed 7]
//
// The workload is in replica units (walks per vertex for BPPR; source
// count for MSSP/BKHS). -scale extrapolates the measured statistics before
// costing; the default uses the dataset's node-scale factor.
//
// Telemetry flags: -report writes a machine-readable JSON run report,
// -events a JSONL event log, -trace / -machine-trace per-round CSVs,
// -trace-out a Chrome trace-event JSON span file (load it in Perfetto:
// run → batch → superstep → per-machine phase spans, with checkpoint,
// crash and recovery spans when faults are injected), and -debug-addr
// serves /metrics (Prometheus text), /metrics.json, /debug/trace,
// /debug/vars and /debug/pprof while the job runs. Report, events and
// traces carry only simulated time, so identical seeded invocations
// produce byte-identical files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vcmt/internal/batch"
	"vcmt/internal/fault"
	"vcmt/internal/graph"
	"vcmt/internal/obs"
	"vcmt/internal/ooc"
	"vcmt/internal/sim"
	"vcmt/internal/tasks"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vcrun: ")
	var (
		taskName    = flag.String("task", "BPPR", "BPPR, MSSP or BKHS")
		datasetName = flag.String("dataset", "DBLP", "dataset replica (Table 1 name)")
		systemName  = flag.String("system", "Pregel+", "VC-system profile")
		clusterName = flag.String("cluster", "Galaxy-8", "cluster profile")
		machines    = flag.Int("machines", 0, "override the cluster's machine count")
		graphFile   = flag.String("graph-file", "", "load the dataset replica from this graphgen binary instead of generating it")
		workload    = flag.Int("workload", 64, "replica workload (walks per vertex / sources)")
		batches     = flag.Int("batches", 1, "number of equal batches (1 = Full-Parallelism)")
		khops       = flag.Int("k", 2, "hop radius for BKHS")
		scale       = flag.Float64("scale", 0, "stat extrapolation factor (0 = dataset node scale)")
		seed        = flag.Uint64("seed", 7, "random seed")
		workers     = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS, 1 = sequential; results are identical for every value)")
		tracePath   = flag.String("trace", "", "write a per-round CSV trace to this file")
		machTrace   = flag.String("machine-trace", "", "write a per-round, per-machine CSV trace to this file")
		reportPath  = flag.String("report", "", "write a JSON run report to this file")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON span trace to this file (open in Perfetto)")
		eventsPath  = flag.String("events", "", "write a JSONL event log to this file")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, expvar and pprof on this address (e.g. :6060)")
		ckptDir     = flag.String("checkpoint-dir", "", "enable superstep checkpointing into this directory")
		ckptIval    = flag.Int("checkpoint-interval", 0, "checkpoint every N supersteps (0 = engine default)")
		faultSpec   = flag.String("fault-plan", "", `deterministic fault plan, e.g. "crash:worker=1,step=5" (see internal/fault; crashes need -checkpoint-dir)`)
		oocOn       = flag.Bool("ooc", false, "run supersteps out-of-core: stream partitioned edges and messages through a bounded memory window (results are bit-identical to in-memory)")
		oocBudget   = flag.Int64("ooc-budget", 64<<20, "out-of-core resident-window budget in bytes (derives the partition count)")
		oocParts    = flag.Int("ooc-partitions", 0, "fix the out-of-core partition count (0 = derive from -ooc-budget)")
		oocDir      = flag.String("ooc-dir", "", "out-of-core partition-file directory (empty = private temp dir per batch)")
	)
	flag.Parse()

	var fplan *fault.Plan
	if *faultSpec != "" {
		var err error
		fplan, err = fault.Parse(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
	}

	var (
		oocCfg   *tasks.OOCConfig
		oocStats *ooc.IOStats
	)
	if *oocOn {
		oocStats = &ooc.IOStats{}
		oocCfg = &tasks.OOCConfig{
			Dir:               *oocDir,
			MemoryBudgetBytes: *oocBudget,
			Partitions:        *oocParts,
			Stats:             oocStats,
		}
	}

	d, err := graph.Dataset(*datasetName)
	if err != nil {
		log.Fatal(err)
	}
	system, err := sim.SystemByName(*systemName)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := sim.ClusterByName(*clusterName)
	if err != nil {
		log.Fatal(err)
	}
	if *machines > 0 {
		cluster = cluster.WithMachines(*machines)
	}
	if *graphFile != "" {
		// Accepts v3 (bulk/mmap zero-copy load) and legacy v2 dumps alike.
		// The checksummed loader rejects corrupt dumps; PrimeDataset rejects
		// dumps of the wrong dataset. A primed cache makes d.Load() below
		// return the file's graph instead of regenerating.
		loaded, err := graph.LoadBinaryFile(*graphFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := graph.PrimeDataset(d.Name, loaded); err != nil {
			log.Fatal(err)
		}
	}
	g := d.Load()
	part := graph.HashPartition(g.NumVertices(), cluster.Machines)

	statScale := *scale
	if statScale == 0 {
		statScale = d.ScaleNodes()
	}
	cfg := sim.JobConfig{
		Cluster:              cluster,
		System:               system,
		StatScale:            statScale,
		NodeScale:            d.ScaleNodes(),
		GraphBytesPerMachine: (float64(d.PaperNodes)*16 + float64(d.PaperEdges)*8) / float64(cluster.Machines),
	}

	async := system.Async == sim.FullAsync
	if oocCfg != nil && async {
		log.Fatalf("-ooc requires a synchronous system profile; %s runs the asynchronous GAS executor", system.Name)
	}
	if oocCfg != nil && system.Mirror {
		log.Fatalf("-ooc is incompatible with the mirror profile %s (mirror spans assume a resident graph)", system.Name)
	}
	var job tasks.Job
	switch *taskName {
	case "BPPR":
		job = tasks.NewBPPR(g, part, tasks.BPPRConfig{
			WalksPerNode: *workload, Mirror: system.Mirror, Async: async, Seed: *seed,
			Workers:       *workers,
			CheckpointDir: *ckptDir, CheckpointInterval: *ckptIval, Fault: fplan,
			OOC: oocCfg,
		})
	case "MSSP":
		sources := firstSources(g.NumVertices(), *workload)
		job, err = tasks.NewMSSP(g, part, tasks.MSSPConfig{
			Sources: sources, Mirror: system.Mirror, Async: async, Seed: *seed,
			Workers:       *workers,
			CheckpointDir: *ckptDir, CheckpointInterval: *ckptIval, Fault: fplan,
			OOC: oocCfg,
		})
		if err != nil {
			log.Fatal(err)
		}
	case "BKHS":
		sources := firstSources(g.NumVertices(), *workload)
		job = tasks.NewBKHS(g, part, tasks.BKHSConfig{
			Sources: sources, K: *khops, Mirror: system.Mirror, Async: async, Seed: *seed,
			Workers:       *workers,
			CheckpointDir: *ckptDir, CheckpointInterval: *ckptIval, Fault: fplan,
			OOC: oocCfg,
		})
	default:
		log.Fatalf("unknown task %q", *taskName)
	}

	var trace *sim.Trace
	cfgTask := cfg
	cfgTask.Task = job.MemModel()

	// Telemetry: collector (registry + optional event log) and debug server.
	var (
		collector *obs.Collector
		eventsF   *os.File
		reportF   *os.File
		traceF    *os.File
		registry  *obs.Registry
		tracer    *obs.Tracer
	)
	if *reportPath != "" || *eventsPath != "" || *debugAddr != "" || *traceOut != "" {
		registry = obs.NewRegistry()
		copts := obs.CollectorOptions{Registry: registry}
		if *eventsPath != "" {
			eventsF, err = os.Create(*eventsPath)
			if err != nil {
				log.Fatal(err)
			}
			defer eventsF.Close()
			copts.Events = eventsF
		}
		// Open the report and trace files before the run so a bad path
		// fails fast instead of after minutes of simulation.
		if *reportPath != "" {
			reportF, err = os.Create(*reportPath)
			if err != nil {
				log.Fatal(err)
			}
			defer reportF.Close()
		}
		if *traceOut != "" {
			traceF, err = os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer traceF.Close()
			tracer = obs.NewTracer()
			copts.Tracer = tracer
		}
		collector = obs.NewCollector(copts)
		cfgTask.Observer = collector
	}
	if *debugAddr != "" {
		srv, err := obs.StartDebugServerWith(*debugAddr, obs.DebugOptions{
			Registry: registry, Tracer: tracer,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("debug server on http://%s (/metrics, /metrics.json, /debug/vars, /debug/pprof)", srv.Addr())
	}

	run := sim.NewRun(cfgTask)
	if *tracePath != "" || *machTrace != "" {
		trace = &sim.Trace{PerMachine: *machTrace != ""}
		run.SetTrace(trace)
	}
	sched := batch.Equal(job.TotalWorkload(), *batches)
	for i, bw := range sched {
		if run.Overloaded() || bw <= 0 {
			continue
		}
		run.BeginBatch()
		residual, err := job.RunBatch(run, bw, i)
		if err != nil {
			log.Fatal(err)
		}
		run.AddResidual(residual)
	}
	res := run.Result()

	w := os.Stdout
	fmt.Fprintf(w, "job:       %s on %s (%d vertices, %d arcs), %s, %s\n",
		*taskName, d.Name, g.NumVertices(), g.NumEdges(), system.Name, cluster.Name)
	fmt.Fprintf(w, "workload:  %d in %d batch(es), stat scale %.0fx\n", job.TotalWorkload(), *batches, statScale)
	status := fmt.Sprintf("%.1f s", res.Seconds)
	if res.Overflow {
		status = "OVERFLOW (memory beyond physical + swap headroom)"
	} else if res.Overload {
		status = fmt.Sprintf("OVERLOAD (> %d s cutoff; simulated %.0f s)", int(sim.DefaultCutoffSeconds), res.Seconds)
	}
	fmt.Fprintf(w, "time:      %s\n", status)
	fmt.Fprintf(w, "rounds:    %d (avg %.2fM msgs/round, peak %.2fM)\n",
		res.Rounds, res.AvgMsgsPerRound/1e6, res.MaxMsgsPerRound/1e6)
	fmt.Fprintf(w, "memory:    peak %.2f GB/machine (%.0f%% of usable)\n",
		res.PeakMemBytes/(1<<30), res.MaxMemRatio*100)
	fmt.Fprintf(w, "network:   %.2f GB total, %.1f s overuse\n",
		res.WireBytesTotal/(1<<30), res.NetOveruseSec)
	if res.CheckpointsWritten > 0 || res.Recoveries > 0 {
		fmt.Fprintf(w, "ckpt:      %d written (%.2f MB, %.1f s); %d recoveries, %d rounds lost, %.1f s recovering\n",
			res.CheckpointsWritten, float64(res.CheckpointBytes)/(1<<20), res.CheckpointSeconds,
			res.Recoveries, res.RoundsLost, res.RecoverySeconds)
	}
	if system.OutOfCore {
		fmt.Fprintf(w, "disk:      %.1f s IO, max util %.0f%%, %.1f s overuse, queue %.0f\n",
			res.DiskSeconds, res.MaxDiskUtil*100, res.IOOveruseSec, res.MaxIOQueueLen)
	}
	if oocStats != nil {
		// key=value so scripts can assert the memory-window invariant
		// (window_peak <= budget) and the spill volume (wrote >= N*budget).
		fmt.Fprintf(w, "ooc:       read=%d wrote=%d window_peak=%d budget=%d",
			res.OOCReadBytes, res.OOCWriteBytes, res.OOCWindowPeakBytes, *oocBudget)
		if bw := oocStats.BytesPerSec(); bw > 0 {
			fmt.Fprintf(w, " measured_disk=%.1fMB/s", bw/1e6)
		}
		fmt.Fprintln(w)
	}
	if cluster.Cloud {
		mark := ""
		if res.CreditsLowerBound {
			mark = ">"
		}
		fmt.Fprintf(w, "credits:   %s$%.2f\n", mark, res.Credits)
	}
	if trace != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "trace:     %s (%d rounds)\n", *tracePath, len(trace.Rows))
	}
	if trace != nil && *machTrace != "" {
		f, err := os.Create(*machTrace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteMachineCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "mtrace:    %s (%d machine-rounds)\n", *machTrace, len(trace.MachineRows))
	}
	if collector != nil {
		rep := collector.Report(obs.RunMeta{
			Task:      *taskName,
			Dataset:   d.Name,
			System:    system.Name,
			Cluster:   cluster.Name,
			Machines:  cluster.Machines,
			Workload:  job.TotalWorkload(),
			Batches:   *batches,
			Seed:      *seed,
			StatScale: statScale,
		}, res)
		if reportF != nil {
			if err := rep.WriteJSON(reportF); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "report:    %s (%d supersteps, %d machines)\n",
				*reportPath, len(rep.Supersteps), len(rep.Machines))
		}
		if err := collector.EventErr(); err != nil {
			log.Fatalf("event log: %v", err)
		}
		if *eventsPath != "" {
			fmt.Fprintf(w, "events:    %s\n", *eventsPath)
		}
		// Report ran Finish above, so every span (including the run root)
		// is closed by the time the trace is exported.
		if traceF != nil {
			if err := tracer.WriteChromeTrace(traceF); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "spans:     %s (%d spans; open in Perfetto)\n", *traceOut, len(tracer.Spans()))
		}
	}
}

func firstSources(n, count int) []graph.VertexID {
	if count > n {
		count = n
	}
	seen := make(map[graph.VertexID]bool, count)
	out := make([]graph.VertexID, 0, count)
	for i := 0; len(out) < count; i++ {
		v := graph.VertexID(uint64(i) * 2654435761 % uint64(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
