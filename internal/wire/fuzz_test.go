package wire

import (
	"errors"
	"testing"
)

// FuzzWireDecode drives all three decoders over arbitrary bytes: they must
// never panic, and anything they reject must carry the typed ErrCorrupt
// sentinel (possibly via ErrVersion). The seed corpus covers the
// interesting boundaries — valid frames of each type, truncations at every
// structural edge, an oversized declared count, and a hostile length
// prefix.
func FuzzWireDecode(f *testing.F) {
	valid := EncodeDeliver(nil, 2, 7, 0x1234, []Envelope{
		{Dst: 1, Src: 2, Val: 3.5},
		{Dst: 300, Src: 70000, Val: -1},
	})
	f.Add(valid)
	f.Add(EncodeDeliver(nil, 2, 7, 0, nil))
	f.Add(EncodeControl(nil, ControlCheckpoint, 9, 0))
	f.Add(EncodeControl(nil, ControlRound, 3, 1<<40))
	f.Add(EncodeEnvelopes(nil, []Envelope{{Dst: 5, Src: 6, Val: 7}}))
	f.Add([]byte{})
	f.Add(valid[:3])                                                       // truncated header
	f.Add(valid[:headerLen])                                               // header only, payload missing
	f.Add(valid[:len(valid)-1])                                            // truncated final envelope
	f.Add([]byte{'V', 'W', 9, FrameDeliver, 0, 0, 0, 0})                   // bad version
	f.Add([]byte{'V', 'W', Version, 0x7f, 0, 0, 0, 0})                     // unknown type
	f.Add([]byte{'V', 'W', Version, FrameDeliver, 0xff, 0xff, 0xff, 0xff}) // hostile length
	// Oversized declared count with a tiny payload.
	f.Add([]byte{'V', 'W', Version, FrameDeliver, 6, 0, 0, 0, 0, 1, 0, 0xff, 0xff, 0x7f})
	// Version-1 layout (no trace field) under the old version byte: must be
	// rejected with ErrVersion before the payload is parsed.
	f.Add([]byte{'V', 'W', 1, FrameDeliver, 3, 0, 0, 0, 2, 7, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, envs, err := DecodeDeliver(data, nil)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeDeliver: untyped error %v", err)
		}
		if err == nil && h.Count != len(envs) {
			t.Fatalf("DecodeDeliver: header count %d, decoded %d", h.Count, len(envs))
		}
		if err == nil {
			// A frame we accept must re-encode to the identical bytes —
			// the codec is canonical.
			re := EncodeDeliver(nil, h.From, h.Round, h.Trace, envs)
			if string(re) != string(data) {
				t.Fatalf("accepted frame is not canonical:\n in %x\nout %x", data, re)
			}
		}
		if _, _, _, err := DecodeControl(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeControl: untyped error %v", err)
		}
		if _, err := DecodeEnvelopes(data, nil); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeEnvelopes: untyped error %v", err)
		}
	})
}
