// Package ref provides sequential reference implementations of the
// benchmark computations — exact BFS/Dijkstra, power-iteration personalized
// PageRank, and exact k-hop neighborhoods. They serve as test oracles for
// the distributed vertex-centric implementations in internal/tasks.
package ref

import (
	"container/heap"
	"math"

	"vcmt/internal/graph"
)

// BFS returns hop distances from src; unreachable vertices get -1.
func BFS(g *graph.Graph, src graph.VertexID) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Dijkstra returns weighted shortest-path distances from src; unreachable
// vertices get +Inf. Unweighted graphs use weight 1 per edge.
func Dijkstra(g *graph.Graph, src graph.VertexID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		for i, u := range g.Neighbors(item.v) {
			nd := item.d + float64(g.Weight(item.v, i))
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// PPR computes the personalized PageRank vector of src by power iteration
// of π = α·e_src + (1-α)·π·P, matching the α-decay random-walk endpoint
// distribution the paper's BPPR estimates (§2.3). Vertices with no
// out-edges retain their mass (the walk stops there).
func PPR(g *graph.Graph, src graph.VertexID, alpha float64, iters int) []float64 {
	n := g.NumVertices()
	// mass[v] is the probability the walk is at v and still running.
	mass := make([]float64, n)
	next := make([]float64, n)
	pi := make([]float64, n)
	mass[src] = 1
	for it := 0; it < iters; it++ {
		var live float64
		for v := 0; v < n; v++ {
			if mass[v] == 0 {
				continue
			}
			pi[v] += alpha * mass[v]
			moving := (1 - alpha) * mass[v]
			d := g.Degree(graph.VertexID(v))
			if d == 0 {
				// Nowhere to go: the walk will stop here eventually.
				pi[v] += moving
				continue
			}
			share := moving / float64(d)
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				next[u] += share
				live += share
			}
		}
		mass, next = next, mass
		for i := range next {
			next[i] = 0
		}
		if live < 1e-12 {
			break
		}
	}
	// Residual mass (walks still running) is attributed to current nodes;
	// with enough iterations this is negligible.
	for v := 0; v < n; v++ {
		pi[v] += mass[v]
	}
	return pi
}

// KHop returns the set of vertices within k hops of src (excluding src
// itself, matching the BKHS task definition of "the set of nodes that are
// within k-hops of s").
func KHop(g *graph.Graph, src graph.VertexID, k int) map[graph.VertexID]bool {
	out := map[graph.VertexID]bool{}
	dist := BFS(g, src)
	for v := 0; v < g.NumVertices(); v++ {
		if v != int(src) && dist[v] != -1 && dist[v] <= k {
			out[graph.VertexID(v)] = true
		}
	}
	return out
}

// PageRank computes the global PageRank with damping d over iters
// iterations, normalizing dangling mass uniformly.
func PageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		var dangling float64
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			d := g.Degree(graph.VertexID(v))
			if d == 0 {
				dangling += rank[v]
				continue
			}
			share := damping * rank[v] / float64(d)
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				next[u] += share
			}
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		rank, next = next, rank
	}
	return rank
}
