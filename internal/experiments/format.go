package experiments

import (
	"fmt"
	"io"
	"strings"
)

// timeCell renders a row's time like the paper's bars: seconds, or
// "overload"/"overflow" past the cutoff (§4: "We mark a result as overload
// when the task cannot be finished within 6000 seconds").
func timeCell(r Row) string {
	if r.Result.Overflow {
		return "overflow"
	}
	if r.Result.Overload {
		return "overload"
	}
	return fmt.Sprintf("%.1fs", r.Result.Seconds)
}

// WriteFigure renders a figure as an aligned text table, one series per
// row, one batch setting per column, with the best batch starred (the
// paper's yellow arrows).
func WriteFigure(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "== %s: %s ==\n", fig.ID, fig.Title)
	if len(fig.Series) == 0 {
		return
	}
	header := []string{"series"}
	for _, r := range fig.Series[0].Rows {
		header = append(header, fmt.Sprintf("%d-batch", r.Batches))
	}
	rows := [][]string{header}
	for _, s := range fig.Series {
		best := s.Best()
		row := []string{s.Label}
		for _, r := range s.Rows {
			cell := timeCell(r)
			if r.AggregationSeconds > 0 {
				cell += fmt.Sprintf(" (+agg %.0fs)", r.AggregationSeconds)
			}
			if r.Batches == best.Batches {
				cell = "*" + cell
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	for _, n := range fig.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteFigure6 renders the Fig. 6 statistics grid.
func WriteFigure6(w io.Writer, stats []Figure6Stats) {
	fmt.Fprintln(w, "== Figure 6: statistics of Figure 4 (messages per round vs time) ==")
	rows := [][]string{{"workload", "batches", "#msgs/round (M)", "time"}}
	for _, s := range stats {
		t := fmt.Sprintf("%.1fs", s.Seconds)
		if s.Overload {
			t = "overload"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.PaperW),
			fmt.Sprintf("%d", s.Batches),
			fmt.Sprintf("%.1f", s.MsgsPerRoundM),
			t,
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows2 []Table2Row) {
	fmt.Fprintln(w, "== Table 2: (workload, #batches, costs per machine) ==")
	rows := [][]string{{"workload", "batches", "machines", "memory", "time", "net-overuse"}}
	for _, r := range rows2 {
		mem := fmt.Sprintf("%.1fGB", r.MemGB)
		t := fmt.Sprintf("%.1fmin", r.Minutes)
		if r.Overflow {
			mem = "Overflow"
		}
		if r.Overload {
			t = "Overload"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.PaperW),
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%d", r.Machines),
			mem, t,
			fmt.Sprintf("%.1fmin", r.NetOveruseMin),
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows3 []Table3Row) {
	fmt.Fprintln(w, "== Table 3: #batches vs disk utilization vs network (GraphD, 27 machines, workload 2048) ==")
	rows := [][]string{{"batches", "overuse-net", "overuse-IO", "max-disk-util", "IO-queue", "total"}}
	for _, r := range rows3 {
		util := fmt.Sprintf("%.0f%%", r.MaxDiskUtil*100)
		if r.MaxDiskUtil > 1 {
			util = ">100%"
		}
		total := fmt.Sprintf("%.0fs", r.TotalSec)
		if r.Overload {
			total = "overload"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Batches),
			fmt.Sprintf("%.0fs", r.NetOveruseSec),
			fmt.Sprintf("%.0fs", r.IOOveruseSec),
			util,
			fmt.Sprintf("%.0f", r.IOQueueLen),
			total,
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, cells []Table4Cell) {
	fmt.Fprintln(w, "== Table 4: GraphLab(sync) vs GraphLab(async) (seconds / bytes-per-machine) ==")
	rows := [][]string{{"machines", "task", "sync", "async"}}
	for _, c := range cells {
		task := c.Task
		if c.PaperW > 0 {
			task = fmt.Sprintf("%s(%d)", c.Task, c.PaperW)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Machines),
			task,
			fmt.Sprintf("%.1fs/%s", c.SyncSec, bytesHuman(c.SyncBytesPerMachine)),
			fmt.Sprintf("%.1fs/%s", c.AsyncSec, bytesHuman(c.AsyncBytesPerMachine)),
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// WriteFigure9 renders the Fig. 9 unequal-batch panels.
func WriteFigure9(w io.Writer, panels map[string][]Figure9Point) {
	fmt.Fprintln(w, "== Figure 9: unequal batches are beneficial (BPPR, DBLP) ==")
	for _, name := range []string{"a", "b"} {
		pts, ok := panels[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "(%s)\n", name)
		rows := [][]string{{"Δ=W1-W2", "two-batch", "1st alone", "2nd alone"}}
		for _, p := range pts {
			comb := fmt.Sprintf("%.0fs", p.CombinedSec)
			if p.Overload {
				comb = "overload"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Delta),
				comb,
				fmt.Sprintf("%.0fs", p.FirstAlone),
				fmt.Sprintf("%.0fs", p.SecondAlone),
			})
		}
		writeAligned(w, rows)
	}
	fmt.Fprintln(w)
}

// WriteFigure12 renders the tuning case-study panels.
func WriteFigure12(w io.Writer, panels []Figure12Panel) {
	fmt.Fprintln(w, "== Figure 12: tuning Pregel+ with the Section-5 framework (DBLP) ==")
	for _, p := range panels {
		fmt.Fprintf(w, "(%s, %d machines)\n", p.Task, p.Machines)
		rows := [][]string{{"workload", "Full-Parallelism", "Optimized", "schedule"}}
		for _, pt := range p.Points {
			full := fmt.Sprintf("%.0fs", pt.FullSec)
			if pt.FullOverload {
				full = "overload"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.PaperW),
				full,
				fmt.Sprintf("%.0fs", pt.OptimizedSec),
				fmt.Sprintf("%v", []int(pt.Schedule)),
			})
		}
		writeAligned(w, rows)
	}
	fmt.Fprintln(w)
}

// WriteFigureAdaptive renders the closed-loop tuning study.
func WriteFigureAdaptive(w io.Writer, points []AdaptivePoint) {
	fmt.Fprintln(w, "== Figure A: static vs adaptive §5 tuning under mispriced training (BPPR, DBLP, 4 machines) ==")
	rows := [][]string{{"bias", "pressure", "workload", "static", "adaptive", "oracle", "replans", "max-err", "schedule"}}
	for _, p := range points {
		static := fmt.Sprintf("%.0fs", p.Static.Seconds)
		if p.Static.Overload {
			static = "overload"
		}
		if p.StaticDegraded {
			static += " (degraded)"
		}
		adaptive := fmt.Sprintf("%.0fs", p.AdaptiveSec)
		if p.AdaptiveOverload {
			adaptive = "overload"
		}
		oracle := fmt.Sprintf("%.0fs", p.OracleSec)
		if p.OracleOverload {
			oracle = "overload"
		}
		sched := fmt.Sprintf("%d batches", len(p.StaticSchedule))
		if n := len(p.StaticSchedule); n > 0 && n <= 6 {
			sched = fmt.Sprintf("%v", []int(p.StaticSchedule))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.TrainBias),
			fmt.Sprintf("%.1f", p.Pressure),
			fmt.Sprintf("%d", p.Workload),
			static,
			fmt.Sprintf("%s (%d batches)", adaptive, p.AdaptiveBatches),
			oracle,
			fmt.Sprintf("%d", p.Replans),
			fmt.Sprintf("%.2f", p.MaxRelError),
			sched,
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

func bytesHuman(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.1fG", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.0fM", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fK", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}
