package engine

import "math"

// Aggregators implement Pregel's global communication mechanism (§2.2 of
// the paper, after Malewicz et al.): every vertex may contribute a value
// during a superstep; the system reduces the contributions and makes the
// result of superstep S visible to all vertices in superstep S+1.
//
// The paper's systems use aggregators for convergence checks (e.g. "the
// process ends if in one round no shorter paths are found"); the engine's
// message-drain halting covers that case, but aggregators are part of the
// programming contract real Pregel programs rely on, so tasks such as
// Connected Components use them here.
//
// Each aggregator keeps one accumulation lane per logical machine, so
// parallel machines contribute without synchronization; the roll at the
// superstep barrier folds the lanes in machine order. The fold order is
// therefore fixed for every worker count, which keeps runs bit-identical
// across Options.Workers settings (for AggSum over floats the lane fold
// may differ from a strict contribution-order fold in the last ulp, but it
// never differs between worker counts).

// AggregatorKind selects the reduction.
type AggregatorKind int

// Supported reductions.
const (
	AggSum AggregatorKind = iota
	AggMin
	AggMax
)

// aggLane is one machine's private accumulator for a superstep.
type aggLane struct {
	current float64
	touched bool
}

type aggregator struct {
	kind    AggregatorKind
	lanes   []aggLane // one per logical machine
	visible float64   // result of the previous superstep
}

func (a *aggregator) zero() float64 {
	switch a.kind {
	case AggMin:
		return math.Inf(1)
	case AggMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// add contributes v on machine m's lane.
func (a *aggregator) add(m int, v float64) {
	l := &a.lanes[m]
	if !l.touched {
		l.current = a.zero()
		l.touched = true
	}
	switch a.kind {
	case AggMin:
		if v < l.current {
			l.current = v
		}
	case AggMax:
		if v > l.current {
			l.current = v
		}
	default:
		l.current += v
	}
}

// roll folds the touched lanes in machine order into the visible value and
// resets the lanes for the next superstep.
func (a *aggregator) roll() {
	acc := a.zero()
	touched := false
	for m := range a.lanes {
		l := &a.lanes[m]
		if !l.touched {
			continue
		}
		touched = true
		switch a.kind {
		case AggMin:
			if l.current < acc {
				acc = l.current
			}
		case AggMax:
			if l.current > acc {
				acc = l.current
			}
		default:
			acc += l.current
		}
		l.touched = false
	}
	if touched {
		a.visible = acc
	} else {
		a.visible = a.zero()
	}
}

// RegisterAggregator declares a named aggregator before Run.
func (e *Engine[M]) RegisterAggregator(name string, kind AggregatorKind) {
	if e.aggs == nil {
		e.aggs = map[string]*aggregator{}
	}
	a := &aggregator{kind: kind, lanes: make([]aggLane, e.part.NumMachines())}
	a.visible = a.zero()
	e.aggs[name] = a
}

// AggregatorValue returns the final value of a named aggregator after Run
// (or the last superstep's value mid-run).
func (e *Engine[M]) AggregatorValue(name string) float64 {
	if a, ok := e.aggs[name]; ok {
		return a.visible
	}
	return 0
}

func (e *Engine[M]) rollAggregators() {
	for _, a := range e.aggs {
		a.roll()
	}
}

// Aggregate contributes a value to a named aggregator; the reduced result
// becomes visible via AggregatorGet in the next superstep. Contributions
// to unregistered names are dropped.
func (c *Context[M]) Aggregate(name string, v float64) {
	if a, ok := c.e.aggs[name]; ok {
		a.add(c.machine, v)
	}
}

// AggregatorGet reads the previous superstep's reduced value.
func (c *Context[M]) AggregatorGet(name string) float64 {
	if a, ok := c.e.aggs[name]; ok {
		return a.visible
	}
	return 0
}
