package tasks

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"vcmt/internal/engine"
	"vcmt/internal/fault"
	"vcmt/internal/gas"
	"vcmt/internal/graph"
	"vcmt/internal/sim"
	"vcmt/internal/vcapi"
)

// WalkMsg is the BPPR message of the Pregel-based implementation (§3):
// Count walks originating at Src take one step to the destination vertex.
// Sending counted messages instead of one message per walk matches the
// combining GraphLab's sync engine performs (§4.8); the engine's logical
// weight function restores per-walk accounting for the systems that send
// one message per walk.
type WalkMsg struct {
	Src   graph.VertexID
	Count int32
}

// MassMsg is the BPPR message of the mirror-mechanism-based implementation
// (§3): a common message broadcast to every neighbor, carrying the
// fractional number of walks from Src that each receiving neighbor gets
// (the "generalized random walk" / forward-push formulation).
type MassMsg struct {
	Src  graph.VertexID
	Mass float32
}

// BPPRConfig configures a Batch Personalized PageRank job.
type BPPRConfig struct {
	// Alpha is the walk stop probability (default 0.15).
	Alpha float64
	// WalksPerNode is the workload W: every vertex starts W α-decay walks.
	WalksPerNode int
	// Sources restricts the walk origins to a subset of vertices: the
	// paper's alternative workload setting (§4.9), where the unit task is
	// a PPR query and a batch contains a subset of source nodes. When set,
	// the workload unit becomes one source (each source runs WalksPerNode
	// walks, default 1024), and batches split the source set.
	Sources []graph.VertexID
	// Mirror selects the broadcast-interface implementation (fractional
	// push); required for Pregel+(mirror) runs.
	Mirror bool
	// PruneThreshold stops propagating fractional walk mass below this
	// many walks (mirror variant only; default 0.25). Truncated mass is
	// attributed to the vertex where it was parked, so per-source mass is
	// conserved exactly.
	PruneThreshold float64
	// Async runs batches on the asynchronous GAS executor (GraphLab(async),
	// §4.8) instead of the synchronous BSP engine. Incompatible with
	// Mirror (the GraphLab family has no mirroring).
	Async bool
	// Seed drives the per-machine deterministic RNG streams.
	Seed uint64
	// MaxRounds bounds each batch's supersteps (default 10000).
	MaxRounds int
	// Workers sets the engine worker-pool size (see engine.Options.Workers);
	// results are identical for every value.
	Workers int
	// StopWhenOverloaded abandons a batch past the 6000 s cutoff.
	StopWhenOverloaded bool
	// CheckpointDir/CheckpointInterval/Fault: see MSSPConfig.
	CheckpointDir      string
	CheckpointInterval int
	Fault              *fault.Plan
	// OOC enables partitioned out-of-core execution on the synchronous
	// paths (see OOCConfig); ignored in Async and Mirror modes.
	OOC *OOCConfig
	// Combine merges same-destination walk messages of the same source by
	// adding their counts — integer walk counts, so the merge is exact and
	// the walk semantics are unchanged (receivers already handle counted
	// walks). Applies to the synchronous Monte-Carlo path only: the mirror
	// variant's fractional mass is floating point, where regrouping the
	// addition is not bit-exact, and Async folds per activation already.
	// CombineAtDelivery defers the fold to the delivery barrier.
	Combine           bool
	CombineAtDelivery bool
}

func (c *BPPRConfig) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.15
	}
	if c.PruneThreshold == 0 {
		c.PruneThreshold = 0.25
	}
}

// BPPRJob runs Batch Personalized PageRank: PPR(s) for every vertex s,
// estimated from W α-decay random walks per vertex (§2.3). Walk endpoints
// are the intermediate results that accumulate across batches (the
// residual memory of §4.5 and §5).
type BPPRJob struct {
	g    *graph.Graph
	part *graph.Partition
	cfg  BPPRConfig

	// endpoints[m] maps (src, stopVertex) to the (possibly fractional)
	// number of walks from src that stopped at stopVertex, for pairs whose
	// stopVertex lives on machine m.
	endpoints   []map[uint64]float64
	baseline    []int64 // entry counts at the start of the current batch
	launched    int     // walks per node launched so far across batches
	sourcesDone int     // sources completed (source-subset mode)
}

// NewBPPR constructs a BPPR job over the given graph partition. It panics
// if both Mirror and Async are set: the GraphLab family has no mirroring.
func NewBPPR(g *graph.Graph, part *graph.Partition, cfg BPPRConfig) *BPPRJob {
	if cfg.Mirror && cfg.Async {
		panic("tasks: BPPR cannot combine Mirror with Async")
	}
	if len(cfg.Sources) > 0 && cfg.WalksPerNode == 0 {
		cfg.WalksPerNode = 1024
	}
	cfg.defaults()
	j := &BPPRJob{
		g: g, part: part, cfg: cfg,
		endpoints: make([]map[uint64]float64, part.NumMachines()),
		baseline:  make([]int64, part.NumMachines()),
	}
	for m := range j.endpoints {
		j.endpoints[m] = make(map[uint64]float64)
	}
	return j
}

// Name implements Job.
func (j *BPPRJob) Name() string { return "BPPR" }

// TotalWorkload implements Job: walks per node, or the source count in
// source-subset mode (§4.9).
func (j *BPPRJob) TotalWorkload() int {
	if len(j.cfg.Sources) > 0 {
		return len(j.cfg.Sources)
	}
	return j.cfg.WalksPerNode
}

// MemModel implements Job: an endpoint entry is a (source, vertex, count)
// triple (~16 bytes in the C++ systems' hash tables).
func (j *BPPRJob) MemModel() sim.TaskMemModel {
	return sim.TaskMemModel{StateBytesPerEntry: 16, ResidualBytesPerEntry: 16}
}

// WalksLaunched returns the per-node walks launched so far.
func (j *BPPRJob) WalksLaunched() int { return j.launched }

// Estimate returns the current PPR estimate of target with respect to src:
// the fraction of src's walks that stopped at target. In source-subset
// mode the denominator is WalksPerNode once src's batch has run.
func (j *BPPRJob) Estimate(src, target graph.VertexID) float64 {
	denom := j.launched
	if len(j.cfg.Sources) > 0 {
		if j.launched == 0 {
			return 0
		}
		denom = j.cfg.WalksPerNode
	}
	if denom == 0 {
		return 0
	}
	m := j.part.Owner(target)
	return j.endpoints[m][pairKey(src, target)] / float64(denom)
}

// EndpointEntries returns the total number of (source, vertex) endpoint
// pairs recorded so far.
func (j *BPPRJob) EndpointEntries() int64 {
	var t int64
	for _, m := range j.endpoints {
		t += int64(len(m))
	}
	return t
}

// EndpointMass returns the total walk mass recorded for src; exactly the
// walks launched from src for completed batches (mass conservation).
func (j *BPPRJob) EndpointMass(src graph.VertexID) float64 {
	var t float64
	for _, m := range j.endpoints {
		for k, c := range m {
			if uint32(k>>32) == uint32(src) {
				t += c
			}
		}
	}
	return t
}

func (j *BPPRJob) addEndpoint(machine int, src, v graph.VertexID, mass float64) {
	j.endpoints[machine][pairKey(src, v)] += mass
}

// saveEndpoints serializes the per-machine endpoint tables with sorted keys
// so the bytes are deterministic regardless of map iteration order. It is
// the checkpointed program state of both BPPR variants (the baseline counts
// are set at batch start and never change during a batch).
func (j *BPPRJob) saveEndpoints() ([]byte, error) {
	var size int
	for _, m := range j.endpoints {
		size += 8 + len(m)*16
	}
	buf := make([]byte, 0, 4+size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(j.endpoints)))
	keys := make([]uint64, 0)
	for _, m := range j.endpoints {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m)))
		keys = keys[:0]
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m[k]))
		}
	}
	return buf, nil
}

// loadEndpoints restores the endpoint tables from a saveEndpoints snapshot,
// discarding any entries recorded after the checkpoint was cut.
func (j *BPPRJob) loadEndpoints(data []byte) error {
	k := int(binary.LittleEndian.Uint32(data))
	if k != len(j.endpoints) {
		return fmt.Errorf("tasks: BPPR snapshot has %d machines, job has %d", k, len(j.endpoints))
	}
	data = data[4:]
	for m := range j.endpoints {
		count := int(binary.LittleEndian.Uint64(data))
		data = data[8:]
		tbl := make(map[uint64]float64, count)
		for i := 0; i < count; i++ {
			key := binary.LittleEndian.Uint64(data)
			tbl[key] = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			data = data[16:]
		}
		j.endpoints[m] = tbl
	}
	return nil
}

// MCProgram returns the Pregel-based Monte-Carlo vertex program for one
// batch of `workload` walks per vertex, for use with custom executors or
// instrumentation (e.g. the BPPA condition checker); endpoints accumulate
// into the job. The caller is responsible for updating WalksLaunched
// bookkeeping when estimates are read.
func (j *BPPRJob) MCProgram(workload int) vcapi.Program[WalkMsg] {
	return newBpprMC(j, workload, nil)
}

// RunBatch implements Job. In the default mode, `workload` walks start at
// every vertex; in source-subset mode, the next `workload` sources each
// start WalksPerNode walks.
func (j *BPPRJob) RunBatch(run *sim.Run, workload int, batchIdx int) ([]int64, error) {
	if workload <= 0 {
		return make([]int64, j.part.NumMachines()), nil
	}
	for m := range j.baseline {
		j.baseline[m] = int64(len(j.endpoints[m]))
	}
	var batchSources map[graph.VertexID]bool
	if len(j.cfg.Sources) > 0 {
		hi := j.sourcesDone + workload
		if hi > len(j.cfg.Sources) {
			hi = len(j.cfg.Sources)
		}
		batchSources = make(map[graph.VertexID]bool, hi-j.sourcesDone)
		for _, s := range j.cfg.Sources[j.sourcesDone:hi] {
			batchSources[s] = true
		}
		j.sourcesDone = hi
	}
	opts := engine.Options[WalkMsg]{
		Weight:             func(m WalkMsg) int64 { return int64(m.Count) },
		CombineAtDelivery:  j.cfg.CombineAtDelivery,
		MaxRounds:          j.cfg.MaxRounds,
		Seed:               j.cfg.Seed ^ uint64(batchIdx+1)*0x9e3779b97f4a7c15,
		Workers:            j.cfg.Workers,
		StopWhenOverloaded: j.cfg.StopWhenOverloaded,
		Checkpoint:         checkpointOptions[WalkMsg](WalkMsgCodec{}, j.cfg.CheckpointDir, j.cfg.CheckpointInterval, batchIdx),
		Fault:              j.cfg.Fault,
		OOC:                oocOptions[WalkMsg](WalkMsgCodec{}, j.cfg.OOC, batchIdx, j.cfg.Mirror),
	}
	if j.cfg.Combine {
		opts.Combiner = func(a, b WalkMsg) WalkMsg {
			return WalkMsg{Src: a.Src, Count: a.Count + b.Count}
		}
		opts.CombinerKey = func(m WalkMsg) uint64 { return uint64(m.Src) }
	}
	var err error
	perNode := workload
	if batchSources != nil {
		perNode = j.cfg.WalksPerNode
	}
	switch {
	case j.cfg.Async:
		prog := newBpprMC(j, perNode, batchSources)
		a := gas.NewAsync[WalkMsg](j.g, j.part, prog, run, gas.Options[WalkMsg]{
			Weight:             opts.Weight,
			Seed:               opts.Seed,
			StopWhenOverloaded: opts.StopWhenOverloaded,
		})
		err = a.Run()
	case j.cfg.Mirror:
		prog := newBpprPush(j, perNode, batchSources)
		e := engine.New[MassMsg](j.g, j.part, prog, run, engine.Options[MassMsg]{
			MaxRounds:          opts.MaxRounds,
			Seed:               opts.Seed,
			Workers:            j.cfg.Workers,
			StopWhenOverloaded: opts.StopWhenOverloaded,
			Checkpoint:         checkpointOptions[MassMsg](MassMsgCodec{}, j.cfg.CheckpointDir, j.cfg.CheckpointInterval, batchIdx),
			Fault:              j.cfg.Fault,
			OOC:                oocOptions[MassMsg](MassMsgCodec{}, j.cfg.OOC, batchIdx, j.cfg.Mirror),
		})
		err = e.Run()
	default:
		prog := newBpprMC(j, perNode, batchSources)
		e := engine.New[WalkMsg](j.g, j.part, prog, run, opts)
		err = e.Run()
	}
	if err != nil {
		return nil, fmt.Errorf("tasks: BPPR batch %d: %w", batchIdx, err)
	}
	if batchSources != nil {
		j.launched = j.cfg.WalksPerNode
	} else {
		j.launched += workload
	}
	resid := make([]int64, j.part.NumMachines())
	for m := range resid {
		resid[m] = int64(len(j.endpoints[m])) - j.baseline[m]
	}
	return resid, nil
}

// bpprMC is the Pregel-based Monte-Carlo program: each message moves a
// counted bundle of walks one step (§3, Pregel (BPPR)).
type bpprMC struct {
	job     *BPPRJob
	w       int
	sources map[graph.VertexID]bool // nil: every vertex is a source
	// scratch[m] is machine m's multinomial bucket buffer: machines
	// compute concurrently, so each needs its own.
	scratch [][]int64
}

func newBpprMC(j *BPPRJob, w int, sources map[graph.VertexID]bool) *bpprMC {
	return &bpprMC{job: j, w: w, sources: sources, scratch: make([][]int64, j.part.NumMachines())}
}

func (p *bpprMC) Seed(ctx vcapi.Context[WalkMsg]) {
	for _, v := range ctx.OwnedVertices() {
		if p.sources != nil && !p.sources[v] {
			continue
		}
		p.step(ctx, v, v, int64(p.w))
	}
}

func (p *bpprMC) Compute(ctx vcapi.Context[WalkMsg], v graph.VertexID, msgs []WalkMsg) {
	for _, m := range msgs {
		p.step(ctx, v, m.Src, int64(m.Count))
	}
}

// step stops a Binomial(count, α) portion of the walks at v and moves the
// rest to uniformly random neighbors.
func (p *bpprMC) step(ctx vcapi.Context[WalkMsg], v, src graph.VertexID, count int64) {
	j := p.job
	rng := ctx.RNG()
	ns := ctx.Graph().Neighbors(v)
	stops := rng.Binomial(count, j.cfg.Alpha)
	if len(ns) == 0 {
		stops = count
	}
	if stops > 0 {
		j.addEndpoint(ctx.Machine(), src, v, float64(stops))
	}
	rest := count - stops
	if rest <= 0 {
		return
	}
	if rest*4 <= int64(len(ns)) {
		// Few walks, many neighbors: route each walk individually.
		for i := int64(0); i < rest; i++ {
			ctx.Send(ns[rng.Intn(len(ns))], WalkMsg{Src: src, Count: 1})
		}
		return
	}
	mach := ctx.Machine()
	if cap(p.scratch[mach]) < len(ns) {
		p.scratch[mach] = make([]int64, len(ns))
	}
	buckets := p.scratch[mach][:len(ns)]
	rng.Multinomial(rest, buckets)
	for i, c := range buckets {
		if c > 0 {
			ctx.Send(ns[i], WalkMsg{Src: src, Count: int32(c)})
		}
	}
}

// StateEntries implements engine.StateReporter: endpoint entries created by
// the current batch.
func (p *bpprMC) StateEntries(machine int) int64 {
	return int64(len(p.job.endpoints[machine])) - p.job.baseline[machine]
}

// SaveState implements vcapi.StateSnapshotter: the batch-accumulated
// endpoint tables. The multinomial scratch buffers are pure per-Compute
// scratch and need no snapshot.
func (p *bpprMC) SaveState() ([]byte, error) { return p.job.saveEndpoints() }

// LoadState implements vcapi.StateSnapshotter.
func (p *bpprMC) LoadState(data []byte) error { return p.job.loadEndpoints(data) }

// bpprPush is the mirror-mechanism-based program (§3, Pregel-Mirror
// (BPPR)): walk mass is fractionalized over neighbors and disseminated via
// the broadcast interface, so one common message serves all neighbors.
type bpprPush struct {
	job     *BPPRJob
	w       int
	sources map[graph.VertexID]bool // nil: every vertex is a source
	// Per-machine, per-source aggregation scratch indexed by source vertex
	// id; accKeys preserves insertion order so execution stays
	// deterministic. Per machine because machines compute concurrently.
	acc     [][]float64
	accKeys [][]graph.VertexID
}

func newBpprPush(j *BPPRJob, w int, sources map[graph.VertexID]bool) *bpprPush {
	k := j.part.NumMachines()
	return &bpprPush{job: j, w: w, sources: sources, acc: make([][]float64, k), accKeys: make([][]graph.VertexID, k)}
}

func (p *bpprPush) Seed(ctx vcapi.Context[MassMsg]) {
	for _, v := range ctx.OwnedVertices() {
		if p.sources != nil && !p.sources[v] {
			continue
		}
		p.push(ctx, v, v, float64(p.w))
	}
}

func (p *bpprPush) Compute(ctx vcapi.Context[MassMsg], v graph.VertexID, msgs []MassMsg) {
	mach := ctx.Machine()
	if p.acc[mach] == nil {
		p.acc[mach] = make([]float64, ctx.Graph().NumVertices())
	}
	acc := p.acc[mach]
	keys := p.accKeys[mach]
	for _, m := range msgs {
		if acc[m.Src] == 0 {
			keys = append(keys, m.Src)
		}
		acc[m.Src] += float64(m.Mass)
	}
	for _, src := range keys {
		p.push(ctx, v, src, acc[src])
		acc[src] = 0
	}
	p.accKeys[mach] = keys[:0]
}

// push parks α·mass at v and broadcasts the remainder, fractionalized over
// v's neighbors. Sub-threshold remainders are parked at v so that the total
// mass per source is conserved exactly.
func (p *bpprPush) push(ctx vcapi.Context[MassMsg], v, src graph.VertexID, mass float64) {
	j := p.job
	ns := ctx.Graph().Neighbors(v)
	stop := j.cfg.Alpha * mass
	rest := mass - stop
	if len(ns) == 0 || rest < j.cfg.PruneThreshold {
		stop = mass
		rest = 0
	}
	if stop > 0 {
		j.addEndpoint(ctx.Machine(), src, v, stop)
	}
	if rest > 0 {
		ctx.Broadcast(v, MassMsg{Src: src, Mass: float32(rest / float64(len(ns)))})
	}
}

// StateEntries implements engine.StateReporter.
func (p *bpprPush) StateEntries(machine int) int64 {
	return int64(len(p.job.endpoints[machine])) - p.job.baseline[machine]
}

// SaveState implements vcapi.StateSnapshotter: the batch-accumulated
// endpoint tables. The acc/accKeys scratch is drained within every Compute
// call and needs no snapshot.
func (p *bpprPush) SaveState() ([]byte, error) { return p.job.saveEndpoints() }

// LoadState implements vcapi.StateSnapshotter.
func (p *bpprPush) LoadState(data []byte) error { return p.job.loadEndpoints(data) }

// WalkMsgCodec serializes WalkMsg for out-of-core spilling.
type WalkMsgCodec struct{}

// Encode implements engine.Codec.
func (WalkMsgCodec) Encode(buf []byte, m WalkMsg) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], m.Src)
	binary.LittleEndian.PutUint32(b[4:], uint32(m.Count))
	return append(buf, b[:]...)
}

// Decode implements engine.Codec.
func (WalkMsgCodec) Decode(data []byte) (WalkMsg, int) {
	return WalkMsg{
		Src:   binary.LittleEndian.Uint32(data[:4]),
		Count: int32(binary.LittleEndian.Uint32(data[4:8])),
	}, 8
}

// MassMsgCodec serializes MassMsg for checkpointing the mirror variant's
// pending outboxes.
type MassMsgCodec struct{}

// Encode implements engine.Codec.
func (MassMsgCodec) Encode(buf []byte, m MassMsg) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], m.Src)
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(m.Mass))
	return append(buf, b[:]...)
}

// Decode implements engine.Codec.
func (MassMsgCodec) Decode(data []byte) (MassMsg, int) {
	return MassMsg{
		Src:  binary.LittleEndian.Uint32(data[:4]),
		Mass: math.Float32frombits(binary.LittleEndian.Uint32(data[4:8])),
	}, 8
}
