package rpcrt

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/rpc"
	"time"

	"vcmt/internal/ckpt"
	"vcmt/internal/graph"
)

// defaultRPCTimeout bounds every master->worker and worker->worker call:
// net/rpc's Client.Call blocks forever, so a hung or dead peer would
// otherwise wedge the whole cluster.
const defaultRPCTimeout = 30 * time.Second

// callTimeout is Client.Call with a deadline. d <= 0 disables the bound.
func callTimeout(cl *rpc.Client, method string, args, reply any, d time.Duration) error {
	if d <= 0 {
		return cl.Call(method, args, reply)
	}
	call := cl.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case c := <-call.Done:
		return c.Error
	case <-t.C:
		return fmt.Errorf("rpcrt: %s timed out after %v", method, d)
	}
}

// Section names inside a worker snapshot.
const (
	wsecMeta     = "meta"
	wsecInbox    = "inbox"
	wsecCounters = "counters"
	wsecProg     = "prog"
)

// ckptManager builds the worker's checkpoint manager: all workers share one
// directory, isolated by per-worker file prefixes.
func ckptManager(dir string, id int) *ckpt.Manager {
	return &ckpt.Manager{Dir: dir, Prefix: fmt.Sprintf("w%d-", id), Keep: 1}
}

// CkptArgs asks a worker to checkpoint its barrier state into Dir.
type CkptArgs struct {
	Dir   string
	Round int
}

// Checkpoint snapshots the worker's superstep state — the sorted current
// inbox (the messages the next compute will consume), the conservation
// counters, and the program state including RNG streams — into a
// checksummed file. It replies with the bytes written. The master calls it
// at the barrier after Advance, so pending and outbox are empty by
// construction.
func (w *Worker) Checkpoint(args CkptArgs, reply *int64) error {
	if w.dead.Load() {
		return w.down()
	}
	if w.prog == nil {
		return fmt.Errorf("rpcrt: no job on worker %d", w.id)
	}
	snap := &ckpt.Snapshot{Step: args.Round}

	var meta []byte
	meta = binary.LittleEndian.AppendUint64(meta, uint64(args.Round))
	snap.Add(wsecMeta, meta)

	// The inbox is flattened in group order; groups are rebuilt on restore
	// by splitting on destination change (Advance groups by destination).
	var total int
	for _, msgs := range w.cur {
		total += len(msgs)
	}
	inbox := make([]byte, 0, 4+total*wireMessageBytes)
	inbox = binary.LittleEndian.AppendUint32(inbox, uint32(total))
	for _, msgs := range w.cur {
		for _, m := range msgs {
			inbox = binary.LittleEndian.AppendUint32(inbox, m.Dst)
			inbox = binary.LittleEndian.AppendUint32(inbox, m.Src)
			inbox = binary.LittleEndian.AppendUint32(inbox, math.Float32bits(m.Val))
		}
	}
	snap.Add(wsecInbox, inbox)

	w.statsMu.Lock()
	ctr := make([]byte, 0, 4+len(w.sentByPeer)*16+8)
	ctr = binary.LittleEndian.AppendUint32(ctr, uint32(w.nPeer))
	for _, n := range w.sentByPeer {
		ctr = binary.LittleEndian.AppendUint64(ctr, uint64(n))
	}
	for _, n := range w.recvByPeer {
		ctr = binary.LittleEndian.AppendUint64(ctr, uint64(n))
	}
	ctr = binary.LittleEndian.AppendUint64(ctr, uint64(w.retries))
	w.statsMu.Unlock()
	snap.Add(wsecCounters, ctr)

	prog, err := w.prog.saveState()
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d saveState: %w", w.id, err)
	}
	snap.Add(wsecProg, prog)

	bytes, err := ckptManager(args.Dir, w.id).Save(snap)
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d checkpoint: %w", w.id, err)
	}
	*reply = bytes
	return nil
}

// RestoreArgs asks a worker to reload its latest checkpoint from Dir.
type RestoreArgs struct {
	Dir string
}

// Restore rolls the worker back to its latest checkpoint: pending and
// outboxes are discarded (they belong to the crashed superstep), the
// current inbox, counters and program state are reloaded. The master
// re-broadcasts StartJob first, so restarted and surviving workers restore
// through the same code path.
func (w *Worker) Restore(args RestoreArgs, _ *struct{}) error {
	if w.dead.Load() {
		return w.down()
	}
	if w.prog == nil {
		return fmt.Errorf("rpcrt: no job on worker %d", w.id)
	}
	snap, _, err := ckptManager(args.Dir, w.id).Latest()
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d restore: %w", w.id, err)
	}
	if snap == nil {
		return fmt.Errorf("rpcrt: worker %d restore: no checkpoint in %s", w.id, args.Dir)
	}

	meta := snap.Get(wsecMeta)
	if len(meta) < 8 {
		return fmt.Errorf("rpcrt: worker %d restore: truncated meta", w.id)
	}
	w.round = int(binary.LittleEndian.Uint64(meta))

	w.mu.Lock()
	w.pending = make(map[graph.VertexID][]Message)
	w.mu.Unlock()
	for p := range w.outbox {
		w.outbox[p] = w.outbox[p][:0]
	}
	w.sent = 0

	inbox := snap.Get(wsecInbox)
	total := int(binary.LittleEndian.Uint32(inbox))
	inbox = inbox[4:]
	w.cur = w.cur[:0]
	var group []Message
	for i := 0; i < total; i++ {
		m := Message{
			Dst: binary.LittleEndian.Uint32(inbox),
			Src: binary.LittleEndian.Uint32(inbox[4:]),
			Val: math.Float32frombits(binary.LittleEndian.Uint32(inbox[8:])),
		}
		inbox = inbox[12:]
		if len(group) > 0 && group[len(group)-1].Dst != m.Dst {
			w.cur = append(w.cur, group)
			group = nil
		}
		group = append(group, m)
	}
	if len(group) > 0 {
		w.cur = append(w.cur, group)
	}

	ctr := snap.Get(wsecCounters)
	if got := int(binary.LittleEndian.Uint32(ctr)); got != w.nPeer {
		return fmt.Errorf("rpcrt: worker %d restore: snapshot has %d peers, cluster has %d", w.id, got, w.nPeer)
	}
	ctr = ctr[4:]
	w.statsMu.Lock()
	for p := range w.sentByPeer {
		w.sentByPeer[p] = int64(binary.LittleEndian.Uint64(ctr))
		ctr = ctr[8:]
	}
	for p := range w.recvByPeer {
		w.recvByPeer[p] = int64(binary.LittleEndian.Uint64(ctr))
		ctr = ctr[8:]
	}
	w.retries = int64(binary.LittleEndian.Uint64(ctr))
	w.statsMu.Unlock()

	if err := w.prog.loadState(snap.Get(wsecProg)); err != nil {
		return fmt.Errorf("rpcrt: worker %d loadState: %w", w.id, err)
	}
	return nil
}

// ReconnectArgs tells a worker that peer Peer now listens at Addr.
type ReconnectArgs struct {
	Peer int
	Addr string
}

// Reconnect re-dials a restarted peer.
func (w *Worker) Reconnect(args ReconnectArgs, _ *struct{}) error {
	if w.dead.Load() {
		return w.down()
	}
	if args.Peer < 0 || args.Peer >= len(w.peers) {
		return fmt.Errorf("rpcrt: reconnect to unknown peer %d", args.Peer)
	}
	if old := w.peers[args.Peer]; old != nil {
		old.Close()
	}
	cl, err := rpc.Dial("tcp", args.Addr)
	if err != nil {
		return fmt.Errorf("rpcrt: worker %d redial peer %d: %w", w.id, args.Peer, err)
	}
	w.peers[args.Peer] = cl
	return nil
}
