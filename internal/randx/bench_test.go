package randx

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(16, 0.15)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100000, 0.15)
	}
}

func BenchmarkMultinomial(b *testing.B) {
	r := New(1)
	out := make([]int64, 16)
	for i := 0; i < b.N; i++ {
		r.Multinomial(1000, out)
	}
}
