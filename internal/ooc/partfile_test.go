package ooc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vcmt/internal/graph"
)

type msgRec struct {
	dst     graph.VertexID
	payload []byte
}

type edgeRec struct {
	v    graph.VertexID
	nbrs []graph.VertexID
	wts  []float32
}

func writeMessages(t *testing.T, path string, recs []msgRec) int64 {
	t.Helper()
	w, err := Create(path, KindMessages, false)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if err := w.AppendMessage(r.dst, r.payload); err != nil {
			t.Fatalf("AppendMessage: %v", err)
		}
	}
	n, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return n
}

func readMessages(t *testing.T, path string) []msgRec {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	var out []msgRec
	for {
		dst, payload, err := r.NextMessage()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("NextMessage: %v", err)
		}
		out = append(out, msgRec{dst, append([]byte(nil), payload...)})
	}
}

// TestMessageRoundTrip drives random message partitions through the codec:
// every record must come back in order, bit-for-bit, and the reported size
// must match the file.
func TestMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var recs []msgRec
		for i := 0; i < rng.Intn(200); i++ {
			p := make([]byte, rng.Intn(40))
			rng.Read(p)
			recs = append(recs, msgRec{graph.VertexID(rng.Uint32()), p})
		}
		path := filepath.Join(t.TempDir(), "m.vp")
		n := writeMessages(t, path, recs)
		fi, err := os.Stat(path)
		if err != nil || fi.Size() != n {
			t.Fatalf("Finish reported %d bytes, file has %d (%v)", n, fi.Size(), err)
		}
		got := readMessages(t, path)
		if len(got) != len(recs) {
			t.Fatalf("trial %d: %d records back, want %d", trial, len(got), len(recs))
		}
		for i := range recs {
			if got[i].dst != recs[i].dst || !bytes.Equal(got[i].payload, recs[i].payload) {
				t.Fatalf("trial %d: record %d mismatch", trial, i)
			}
		}
	}
}

// TestEdgeRoundTrip covers weighted and unweighted edge partitions,
// including empty adjacency lists.
func TestEdgeRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7))
		recs := []edgeRec{{v: 3}} // zero-degree vertex
		for i := 0; i < 100; i++ {
			deg := rng.Intn(20)
			r := edgeRec{v: graph.VertexID(rng.Uint32())}
			for j := 0; j < deg; j++ {
				r.nbrs = append(r.nbrs, graph.VertexID(rng.Uint32()))
				if weighted {
					r.wts = append(r.wts, rng.Float32())
				}
			}
			recs = append(recs, r)
		}
		path := filepath.Join(t.TempDir(), "e.vp")
		w, err := Create(path, KindEdges, weighted)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for _, r := range recs {
			wts := r.wts
			if weighted && wts == nil {
				wts = []float32{}
			}
			if err := w.AppendEdges(r.v, r.nbrs, wts); err != nil {
				t.Fatalf("AppendEdges: %v", err)
			}
		}
		if _, err := w.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if r.Kind() != KindEdges || r.Weighted() != weighted {
			t.Fatalf("header kind=%d weighted=%v", r.Kind(), r.Weighted())
		}
		for i := 0; ; i++ {
			v, nbrs, wts, err := r.NextEdges()
			if err == io.EOF {
				if i != len(recs) {
					t.Fatalf("weighted=%v: %d records back, want %d", weighted, i, len(recs))
				}
				break
			}
			if err != nil {
				t.Fatalf("NextEdges: %v", err)
			}
			want := recs[i]
			if v != want.v || len(nbrs) != len(want.nbrs) {
				t.Fatalf("record %d: v=%d deg=%d, want v=%d deg=%d", i, v, len(nbrs), want.v, len(want.nbrs))
			}
			for j := range nbrs {
				if nbrs[j] != want.nbrs[j] {
					t.Fatalf("record %d neighbor %d: %d != %d", i, j, nbrs[j], want.nbrs[j])
				}
				if weighted && wts[j] != want.wts[j] {
					t.Fatalf("record %d weight %d: %v != %v", i, j, wts[j], want.wts[j])
				}
			}
			if !weighted && wts != nil {
				t.Fatalf("unweighted partition returned weights")
			}
		}
		r.Close()
	}
}

// TestCorruptionMatrix flips, truncates and extends an otherwise valid file
// at every offset: the reader must reject each mutation with ErrCorrupt and
// never panic.
func TestCorruptionMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.vp")
	writeMessages(t, path, []msgRec{
		{1, []byte("alpha")}, {70000, []byte{}}, {2, []byte("bb")},
	})
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	drain := func(data []byte) error {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for {
			if _, _, err := r.NextMessage(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}
	if err := drain(valid); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if err := drain(valid[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err=%v, want ErrCorrupt", cut, err)
		}
	}
	for off := 0; off < len(valid); off++ {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		if err := drain(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err=%v, want ErrCorrupt", off, err)
		}
	}
	if err := drain(append(append([]byte(nil), valid...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted")
	}
}

// TestVersionRejected checks that an unsupported version byte surfaces the
// typed ErrVersion (which also satisfies errors.Is(err, ErrCorrupt)).
func TestVersionRejected(t *testing.T) {
	data := []byte{partMagic0, partMagic1, 99, KindMessages, 0}
	_, err := NewReader(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrVersion wrapping ErrCorrupt", err)
	}
}

// TestResumeWriter snapshots a half-written partition, resumes it in a new
// file, finishes both identically, and checks the resumed file verifies.
func TestResumeWriter(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.vp")
	w, err := Create(p1, KindMessages, false)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendMessage(5, []byte("one"))
	w.AppendMessage(9, []byte("two"))
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	records := w.Records()

	p2 := filepath.Join(dir, "b.vp")
	w2, err := ResumeWriter(p2, snap, records)
	if err != nil {
		t.Fatalf("ResumeWriter: %v", err)
	}
	w.AppendMessage(11, []byte("three"))
	w2.AppendMessage(11, []byte("three"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Finish(); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("resumed file differs from continuous file")
	}
	got := readMessages(t, p2)
	if len(got) != 3 || got[2].dst != 11 {
		t.Fatalf("resumed file decoded wrong: %+v", got)
	}
}

// TestAbortRemovesFile checks Abort deletes a half-written partition.
func TestAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.vp")
	w, err := Create(path, KindMessages, false)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendMessage(1, []byte("y"))
	w.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file still exists after Abort: %v", err)
	}
}

// TestKindMismatch checks the typed-append and typed-read guards.
func TestKindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.vp")
	w, err := Create(path, KindEdges, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMessage(1, nil); err == nil {
		t.Fatal("AppendMessage accepted on edge partition")
	}
	w.AppendEdges(0, []graph.VertexID{1}, nil)
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.NextMessage(); err == nil {
		t.Fatal("NextMessage accepted on edge partition")
	}
}
