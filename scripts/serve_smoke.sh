#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the vcserve admission controller.
#
# Builds graphgen, vcrun and vcserve; dumps a checksummed Web-St binary;
# sizes the memory budget for exactly one job by probing the trained model;
# then submits two identical jobs: the first must be admitted, the second
# must queue on the budget, both must complete, and each report must be
# byte-identical to the equivalent one-shot `vcrun -report` (itself loading
# the graph through -graph-file). Also verifies corrupt dumps are rejected
# by both loaders and that the queue shows up in /metrics and the JSONL
# event log. Run from the repository root (CI and `make serve-smoke` do).
set -eu

DIR=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

say() { echo "serve-smoke: $*"; }
die() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# The smoke job: heavy enough (~1s wall) that the second submission lands
# while the first is still running.
TASK=BPPR DATASET=Web-St WORKLOAD=512 BATCHES=8 SEED=7

say "building binaries"
go build -o "$DIR/graphgen" ./cmd/graphgen
go build -o "$DIR/vcrun" ./cmd/vcrun
go build -o "$DIR/vcserve" ./cmd/vcserve

say "dumping $DATASET replica"
mkdir -p "$DIR/graphs"
"$DIR/graphgen" -dataset "$DATASET" -out "$DIR/graphs/$DATASET.bin"

# Corruption check: a flipped byte must be rejected with the typed corrupt
# error by vcrun -graph-file and by vcserve -graph-dir — never a panic or a
# silent load.
say "checking corrupt dumps are rejected"
mkdir -p "$DIR/bad"
cp "$DIR/graphs/$DATASET.bin" "$DIR/bad/$DATASET.bin"
SIZE=$(wc -c < "$DIR/bad/$DATASET.bin")
printf 'X' | dd of="$DIR/bad/$DATASET.bin" bs=1 seek=$((SIZE / 2)) conv=notrunc 2>/dev/null
if "$DIR/vcrun" -task "$TASK" -dataset "$DATASET" -graph-file "$DIR/bad/$DATASET.bin" -workload 4 2>"$DIR/corrupt-run.err"; then
    die "vcrun accepted a corrupt graph file"
fi
grep -q "corrupt" "$DIR/corrupt-run.err" || die "vcrun corrupt-file error lacks 'corrupt': $(cat "$DIR/corrupt-run.err")"
if "$DIR/vcserve" -addr 127.0.0.1:0 -graph-dir "$DIR/bad" 2>"$DIR/corrupt-serve.err"; then
    die "vcserve accepted a corrupt graph dir"
fi
grep -q "corrupt" "$DIR/corrupt-serve.err" || die "vcserve corrupt-dir error lacks 'corrupt': $(cat "$DIR/corrupt-serve.err")"

start_server() {
    # $1: extra flags. Prints nothing; sets SRV_PID and BASE.
    "$DIR/vcserve" -addr 127.0.0.1:0 -graph-dir "$DIR/graphs" $1 >"$DIR/server.log" 2>&1 &
    SRV_PID=$!
    BASE=""
    for _ in $(seq 1 100); do
        BASE=$(sed -n 's/.*serving on http:\/\/\([0-9.:]*\).*/\1/p' "$DIR/server.log")
        [ -n "$BASE" ] && break
        kill -0 "$SRV_PID" 2>/dev/null || die "server died: $(cat "$DIR/server.log")"
        sleep 0.1
    done
    [ -n "$BASE" ] || die "server never announced its address: $(cat "$DIR/server.log")"
}

stop_server() {
    kill "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
    SRV_PID=""
}

SPEC="{\"task\":\"$TASK\",\"dataset\":\"$DATASET\",\"workload\":$WORKLOAD,\"batches\":$BATCHES,\"seed\":$SEED}"

# Probe run: read the model's predicted peak for this job so the real
# budget can be sized to fit exactly one. The probe POST also trains the
# admission model, so it takes a few seconds.
say "probing predicted peak"
start_server ""
curl -sf -X POST -d "$SPEC" "http://$BASE/v1/jobs" >"$DIR/probe.json"
stop_server
PREDICTED=$(sed -n 's/.*"predicted_peak_bytes": \([0-9][0-9]*\).*/\1/p' "$DIR/probe.json")
[ -n "$PREDICTED" ] && [ "$PREDICTED" -gt 0 ] || die "no predicted peak in probe response: $(cat "$DIR/probe.json")"
BUDGET_GB=$(awk "BEGIN{printf \"%.9f\", $PREDICTED * 1.5 / 1073741824}")
say "predicted peak $PREDICTED bytes; budget $BUDGET_GB GB (fits one job)"

# The real run: budget for one job, plenty of worker slots, so the second
# submission must queue on memory, not on a slot.
start_server "-max-running 4 -budget-gb $BUDGET_GB -events $DIR/events.jsonl"
say "server on $BASE"
curl -sf -X POST -d "$SPEC" "http://$BASE/v1/jobs" >"$DIR/job1.json"
curl -sf -X POST -d "$SPEC" "http://$BASE/v1/jobs" >"$DIR/job2.json"
grep -q '"state": "\(admitted\|running\)"' "$DIR/job1.json" || die "job 1 not admitted: $(cat "$DIR/job1.json")"
grep -q '"state": "queued"' "$DIR/job2.json" || die "job 2 not queued: $(cat "$DIR/job2.json")"
say "job-0001 admitted, job-0002 queued"

for ID in job-0001 job-0002; do
    DONE=""
    for _ in $(seq 1 300); do
        STATE=$(curl -sf "http://$BASE/v1/jobs/$ID" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
        case "$STATE" in
        completed) DONE=1; break ;;
        failed | rejected) die "$ID reached state $STATE" ;;
        esac
        sleep 0.2
    done
    [ -n "$DONE" ] || die "$ID did not complete in time"
done
say "both jobs completed"

# Byte-identity: each service report equals the one-shot vcrun report for
# the same spec against the same pregenerated graph file.
"$DIR/vcrun" -task "$TASK" -dataset "$DATASET" -graph-file "$DIR/graphs/$DATASET.bin" \
    -workload "$WORKLOAD" -batches "$BATCHES" -seed "$SEED" -report "$DIR/ref.json" >/dev/null
curl -sf "http://$BASE/v1/jobs/job-0001/report" >"$DIR/report1.json"
curl -sf "http://$BASE/v1/jobs/job-0002/report" >"$DIR/report2.json"
cmp "$DIR/ref.json" "$DIR/report1.json" || die "job-0001 report differs from vcrun -report"
cmp "$DIR/ref.json" "$DIR/report2.json" || die "job-0002 report differs from vcrun -report"
say "reports byte-identical to vcrun -report"

# The queue must be visible in the Prometheus exposition and the event log.
curl -sf "http://$BASE/metrics" >"$DIR/metrics.txt"
grep -q '^serve_jobs_queued_total{.*} 1$' "$DIR/metrics.txt" || die "queued counter missing from /metrics"
grep -q '^serve_jobs_completed_total{.*} 2$' "$DIR/metrics.txt" || die "completed counter != 2 in /metrics"
grep -q '"type":"job_queued"' "$DIR/events.jsonl" || die "job_queued missing from events log"
grep -c '"type":"job_completed"' "$DIR/events.jsonl" | grep -qx 2 || die "expected 2 job_completed events"
say "queue visible in /metrics and events.jsonl"

stop_server
say "PASS"
