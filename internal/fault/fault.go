// Package fault provides seeded, deterministic fault plans for exercising
// the checkpoint/recovery subsystem. A Plan is a fixed list of one-shot
// events — crash worker i at superstep s, drop or delay a Deliver RPC,
// slow a machine's compute — that the runtimes consult at well-defined
// points. Events are consumed when they fire, so a recovered run that
// replays the same superstep does not re-trigger the fault (a crash loop
// would otherwise make recovery untestable).
//
// Plans are built from a compact spec string (see Parse) so they can ride
// on a command-line flag, and the "rand:" clause expands to concrete
// events deterministically from its seed — the same spec always injects
// the same faults.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"vcmt/internal/randx"
)

type kind int

const (
	kindCrash kind = iota
	kindDrop
	kindDelay
	kindSlow
)

type event struct {
	kind   kind
	worker int // crash/delay/slow target; drop: sender
	peer   int // drop: receiver
	step   int
	count  int // drop: remaining send attempts to drop
	delay  time.Duration
	factor float64
	fired  bool
}

// Plan is a deterministic schedule of fault events. All query methods are
// safe for concurrent use (rpcrt workers share one plan in-process) and
// are nil-receiver safe, so callers can hold a nil *Plan for "no faults".
type Plan struct {
	mu     sync.Mutex
	events []event
	spec   string
}

// Parse builds a Plan from a spec: semicolon-separated clauses of the form
// kind:key=value,key=value. Supported clauses:
//
//	crash:worker=1,step=5          kill worker 1 before superstep 5 runs
//	drop:from=0,to=2,step=3        drop 1 Deliver attempt 0->2 in step 3
//	drop:from=0,to=2,step=3,count=2
//	delay:worker=2,step=4,ms=50    stall worker 2's compute by 50 ms
//	slow:worker=1,step=3,factor=2  stretch worker 1's step-3 compute 2x
//	rand:crashes=2,workers=4,maxstep=20,seed=7
//
// The rand clause expands, deterministically from its seed, into `crashes`
// crash events at distinct supersteps in [2, maxstep] on workers chosen
// uniformly from [0, workers). Superstep 1 (seeding) is never a fault
// point: both runtimes cut their first checkpoint at the step-1 barrier,
// so every recoverable fault lands at step >= 2.
func Parse(spec string) (*Plan, error) {
	p := &Plan{spec: spec}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q has no kind", clause)
		}
		kv, err := parseKV(rest)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch head {
		case "crash":
			ev, err := need(kv, "worker", "step")
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			p.events = append(p.events, event{kind: kindCrash, worker: ev["worker"], step: ev["step"]})
		case "drop":
			ev, err := need(kv, "from", "to", "step")
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			count := kv["count"]
			if count == 0 {
				count = 1
			}
			p.events = append(p.events, event{kind: kindDrop, worker: ev["from"], peer: ev["to"], step: ev["step"], count: count})
		case "delay":
			ev, err := need(kv, "worker", "step", "ms")
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			p.events = append(p.events, event{kind: kindDelay, worker: ev["worker"], step: ev["step"], delay: time.Duration(ev["ms"]) * time.Millisecond})
		case "slow":
			ev, err := need(kv, "worker", "step", "factor")
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if ev["factor"] < 1 {
				return nil, fmt.Errorf("fault: clause %q: factor must be >= 1", clause)
			}
			p.events = append(p.events, event{kind: kindSlow, worker: ev["worker"], step: ev["step"], factor: float64(ev["factor"])})
		case "rand":
			ev, err := need(kv, "crashes", "workers", "maxstep")
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if ev["maxstep"] < 2 {
				return nil, fmt.Errorf("fault: clause %q: maxstep must be >= 2", clause)
			}
			if ev["crashes"] > ev["maxstep"]-1 {
				return nil, fmt.Errorf("fault: clause %q: cannot place %d crashes at distinct steps in [2, %d]", clause, ev["crashes"], ev["maxstep"])
			}
			rng := randx.New(uint64(kv["seed"]))
			taken := map[int]bool{}
			for i := 0; i < ev["crashes"]; i++ {
				step := 2 + rng.Intn(ev["maxstep"]-1)
				for taken[step] {
					step = 2 + rng.Intn(ev["maxstep"]-1)
				}
				taken[step] = true
				p.events = append(p.events, event{kind: kindCrash, worker: rng.Intn(ev["workers"]), step: step})
			}
		default:
			return nil, fmt.Errorf("fault: unknown clause kind %q", head)
		}
	}
	return p, nil
}

func parseKV(s string) (map[string]int, error) {
	kv := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value pair %q", pair)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("value of %q: %v", k, err)
		}
		kv[k] = n
	}
	return kv, nil
}

func need(kv map[string]int, keys ...string) (map[string]int, error) {
	for _, k := range keys {
		if _, ok := kv[k]; !ok {
			return nil, fmt.Errorf("missing key %q", k)
		}
	}
	return kv, nil
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// Remaining counts events that have not fired yet.
func (p *Plan) Remaining() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ev := range p.events {
		if !ev.fired {
			n++
		}
	}
	return n
}

// Crash consumes and reports a crash event targeting the given worker at
// the given superstep.
func (p *Plan) Crash(worker, step int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == kindCrash && !ev.fired && ev.worker == worker && ev.step == step {
			ev.fired = true
			return true
		}
	}
	return false
}

// CrashAtStep consumes the first unfired crash event at the given
// superstep regardless of its worker, returning the worker it named. The
// simulated engine uses this form: all of its machines live in one
// process, so any crash rolls the whole run back.
func (p *Plan) CrashAtStep(step int) (worker int, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == kindCrash && !ev.fired && ev.step == step {
			ev.fired = true
			return ev.worker, true
		}
	}
	return 0, false
}

// DropDeliver consumes one drop attempt for a from->to Deliver during the
// given superstep. Each call consumes one of the event's count attempts,
// so a bounded retry eventually gets the message through.
func (p *Plan) DropDeliver(from, to, step int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == kindDrop && !ev.fired && ev.worker == from && ev.peer == to && ev.step == step {
			ev.count--
			if ev.count <= 0 {
				ev.fired = true
			}
			return true
		}
	}
	return false
}

// Delay consumes and returns the stall duration for a worker's compute at
// the given superstep (0 when no delay event matches).
func (p *Plan) Delay(worker, step int) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == kindDelay && !ev.fired && ev.worker == worker && ev.step == step {
			ev.fired = true
			return ev.delay
		}
	}
	return 0
}

// SlowFactor consumes and returns the compute stretch factor for a worker
// at the given superstep (1 when no slow event matches).
func (p *Plan) SlowFactor(worker, step int) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == kindSlow && !ev.fired && ev.worker == worker && ev.step == step {
			ev.fired = true
			return ev.factor
		}
	}
	return 1
}
