package serve

import (
	"encoding/json"
	"net/http"

	"vcmt/internal/obs"
)

// Handler returns the service's HTTP mux:
//
//	POST /v1/jobs             submit a JobSpec; 202 admitted/queued, 409 rejected
//	GET  /v1/jobs             list jobs in submission order
//	GET  /v1/jobs/{id}        one job's state, plan and result summary
//	GET  /v1/jobs/{id}/report the completed job's run report (exact bytes,
//	                          byte-identical to the equivalent vcrun -report)
//	GET  /v1/jobs/{id}/trace  the completed job's Chrome trace-event spans
//	GET  /v1/graphs           resident graph snapshots
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition
//	GET  /metrics.json        registry snapshot as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.registry) //nolint:errcheck // best-effort over HTTP
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.registry.Snapshot())
	})
	return mux
}

// errorBody is the JSON error envelope for every non-2xx response that is
// not a job view.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	// Validation failures are the client's fault; everything past validate
	// (snapshot load, model training) is the server's.
	if err := sp.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	view, err := s.Submit(sp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if view.State == JobRejected {
		code = http.StatusConflict
	}
	writeJSON(w, code, view)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	raw, state, ok := s.Report(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if state != JobCompleted {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not completed (state " + string(state) + ")"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw) //nolint:errcheck // best-effort over HTTP
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tracer, state, ok := s.Trace(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if state != JobCompleted || tracer == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not completed (state " + string(state) + ")"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tracer.WriteChromeTrace(w) //nolint:errcheck // best-effort over HTTP
}

func (s *Server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}
